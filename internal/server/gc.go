package server

import (
	"cdstore/internal/container"
	"cdstore/internal/index"
	"cdstore/internal/metadata"
)

// GCStats reports one garbage collection pass.
type GCStats struct {
	// SharesDropped counts unreferenced shares physically removed.
	SharesDropped int
	// RecipesDropped counts orphaned file recipes removed.
	RecipesDropped int
	// BytesReclaimed is the container space freed on the backend.
	BytesReclaimed int64
	// ContainersRewritten counts containers that were compacted.
	ContainersRewritten int
}

// GC reclaims the space of expired backups (§4.7: "garbage collection can
// reclaim space of expired backups"; implemented here as the offline mark
// and sweep the paper leaves as future work):
//
//  1. Mark: collect the fingerprints of shares still referenced by any
//     user, and the file keys of recipes still present in the file index.
//  2. Sweep: rewrite every share container dropping unreferenced shares,
//     and every recipe container dropping orphaned recipes; repoint index
//     entries at the rewritten containers.
//
// GC must not run concurrently with uploads: it takes the write side of
// gcMu, stopping the world while sessions' request handlers hold the
// read side. With no uploads in flight, the sharded index holds no
// reservations, so ScanShares sees every share.
func (s *Server) GC() (*GCStats, error) {
	s.gcMu.Lock()
	defer s.gcMu.Unlock()
	if err := s.store.Flush(); err != nil {
		return nil, err
	}
	stats := &GCStats{}

	// Mark live shares. A share is live while any user references it
	// (count > 0) or has uploaded it pending a recipe (count == 0 markers
	// are kept: a crashed backup may still complete).
	liveShares := make(map[metadata.Fingerprint]string) // fp -> container
	err := s.ix.ScanShares(func(e *index.ShareEntry) error {
		liveShares[e.Fingerprint] = e.Container
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Mark live recipes by their file keys.
	liveRecipes := make(map[metadata.Fingerprint]bool)
	err = s.ix.ScanFiles(func(fe *index.FileEntry) error {
		liveRecipes[metadata.FileKey(fe.UserID, fe.Path)] = true
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Sweep share containers.
	shareContainers, err := s.store.ListContainers(container.ShareContainer)
	if err != nil {
		return nil, err
	}
	for _, name := range shareContainers {
		moved := make([]metadata.Fingerprint, 0)
		newName, reclaimed, err := s.store.Rewrite(name, func(fp metadata.Fingerprint) bool {
			c, ok := liveShares[fp]
			if ok && c == name {
				moved = append(moved, fp)
				return true
			}
			stats.SharesDropped++
			return false
		})
		if err != nil {
			return nil, err
		}
		if reclaimed == 0 {
			continue
		}
		stats.BytesReclaimed += reclaimed
		stats.ContainersRewritten++
		// Repoint surviving shares at the rewritten container.
		for _, fp := range moved {
			e, lerr := s.ix.LookupShare(fp)
			if lerr != nil {
				return nil, lerr
			}
			e.Container = newName
			if perr := s.ix.PutShare(e); perr != nil {
				return nil, perr
			}
		}
	}

	// Sweep recipe containers.
	recipeContainers, err := s.store.ListContainers(container.RecipeContainer)
	if err != nil {
		return nil, err
	}
	for _, name := range recipeContainers {
		moved := make([]metadata.Fingerprint, 0)
		newName, reclaimed, err := s.store.Rewrite(name, func(key metadata.Fingerprint) bool {
			if liveRecipes[key] {
				moved = append(moved, key)
				return true
			}
			stats.RecipesDropped++
			return false
		})
		if err != nil {
			return nil, err
		}
		if reclaimed == 0 {
			continue
		}
		stats.BytesReclaimed += reclaimed
		stats.ContainersRewritten++
		if newName == name {
			continue
		}
		// Repoint surviving file entries at the rewritten container.
		// Collect during the scan, write after: PutFile must not run
		// inside ScanFiles, which holds the store's read lock.
		var repoint []*index.FileEntry
		err = s.ix.ScanFiles(func(fe *index.FileEntry) error {
			if fe.RecipeContainer == name {
				fe.RecipeContainer = newName
				cp := *fe
				repoint = append(repoint, &cp)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		for _, fe := range repoint {
			if err := s.ix.PutFile(fe); err != nil {
				return nil, err
			}
		}
	}

	// Compact the index itself after the churn.
	if err := s.ix.Compact(); err != nil {
		return nil, err
	}
	return stats, nil
}
