package client

import (
	"errors"
	"sync"
)

// Pool recycles connected, authenticated Clients across logical
// Backup/Restore sessions: a Get after a Put hands back a Client whose
// n cloud connections and Hello handshakes are already paid for, so a
// workload of many short sessions (the paper's multi-user shape) skips
// per-session TCP + Hello entirely. It composes with the gateway tier —
// pool on the client side, multiplex on the server side — or stands
// alone against direct server connections.
//
// Put is for healthy clients only: a session that ends in a transport
// error should Close its Client instead, and the next Get dials fresh.
type Pool struct {
	opts    Options
	dialers []Dialer
	maxIdle int

	mu     sync.Mutex
	idle   []*Client
	closed bool
}

// NewPool builds a pool that connects with opts/dialers on demand and
// keeps up to maxIdle clients warm (default 8).
func NewPool(opts Options, dialers []Dialer, maxIdle int) *Pool {
	if maxIdle <= 0 {
		maxIdle = 8
	}
	return &Pool{opts: opts, dialers: dialers, maxIdle: maxIdle}
}

// Get returns a warm client if one is idle, else dials a new one.
func (p *Pool) Get() (*Client, error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, errors.New("client: pool closed")
	}
	if n := len(p.idle); n > 0 {
		c := p.idle[n-1]
		p.idle = p.idle[:n-1]
		p.mu.Unlock()
		return c, nil
	}
	p.mu.Unlock()
	return Connect(p.opts, p.dialers)
}

// Put returns a client to the pool for reuse. Beyond maxIdle (or after
// Close) the client's sessions are ended instead.
func (p *Pool) Put(c *Client) {
	if c == nil {
		return
	}
	p.mu.Lock()
	if !p.closed && len(p.idle) < p.maxIdle {
		p.idle = append(p.idle, c)
		p.mu.Unlock()
		return
	}
	p.mu.Unlock()
	c.Close()
}

// Close ends every idle client's sessions; clients currently checked
// out are their holders' to close.
func (p *Pool) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	idle := p.idle
	p.idle = nil
	p.mu.Unlock()
	var firstErr error
	for _, c := range idle {
		if err := c.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
