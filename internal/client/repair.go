package client

import (
	"fmt"

	"cdstore/internal/metadata"
	"cdstore/internal/protocol"
	"cdstore/internal/secretshare"
)

// RepairStats reports a share-rebuild operation.
type RepairStats struct {
	Secrets        int64
	SharesRebuilt  int64
	BytesReuploads int64
	// Restore carries the read-side stats of the underlying streaming
	// restore (downloaded bytes, cache hits, subset retries, failovers).
	Restore RestoreStats
}

// Repair rebuilds the shares of a failed cloud for one backup, per §3.1:
// "In the presence of cloud failures, CDStore reconstructs original
// secrets and then rebuilds the lost shares as in Reed-Solomon codes."
//
// It runs on the same streaming engine as Restore: secrets arrive in
// sequence order from the surviving clouds' pipelined windows and are
// immediately re-encoded with the (deterministic) convergent scheme
// through a pooled arena; share `failedCloud` of each is batched to the
// replacement server, which must already be connected at the same cloud
// index. Memory held is O(window) — no whole-file buffer — and the
// recipes already fetched by the engine are reused for the rebuilt
// cloud's recipe instead of a second GetRecipe round trip.
func (c *Client) Repair(path string, failedCloud int) (*RepairStats, error) {
	if failedCloud < 0 || failedCloud >= c.opts.N {
		return nil, fmt.Errorf("client: cloud index %d out of range", failedCloud)
	}
	target := c.conns[failedCloud]
	if target == nil {
		return nil, fmt.Errorf("client: replacement server for cloud %d not connected", failedCloud)
	}
	e, err := c.newRestoreEngine(path, failedCloud)
	if err != nil {
		return nil, err
	}
	targetPath, err := c.pathForCloud(failedCloud, path)
	if err != nil {
		return nil, err
	}
	stats := &RepairStats{}
	newRecipe := &metadata.Recipe{
		FileMeta: metadata.FileMeta{
			Path:       targetPath,
			FileSize:   e.fileSize,
			NumSecrets: e.numSecrets,
		},
		Entries: make([]metadata.RecipeEntry, e.numSecrets),
	}

	// The re-encode sink: one arena over the client's share pool, shares
	// batched to the target and recycled once flushed. seen suppresses
	// duplicate uploads the way Backup's uploader does. Each batch entry's
	// Data is a pool-owned buffer held until its batch flushes.
	arena := secretshare.NewArenaWithPool(&c.sharePool)
	var batch []protocol.ShareUpload
	batchBytes := 0
	seen := make(map[metadata.Fingerprint]bool)
	recycleBatch := func() {
		for i := range batch {
			c.sharePool.Put(batch[i].Data)
		}
		batch = batch[:0]
		batchBytes = 0
	}
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		_, err := target.call(protocol.MsgPutShares, protocol.EncodeShareBatch(batch), protocol.MsgPutOK)
		recycleBatch()
		return err
	}

	err = e.run(func(seq uint64, secret []byte) error {
		shares, serr := secretshare.SplitWithArena(c.scheme, secret, arena)
		if serr != nil {
			return fmt.Errorf("re-encode secret %d: %w", seq, serr)
		}
		sh := shares[failedCloud]
		fp := metadata.FingerprintOf(sh)
		newRecipe.Entries[seq] = metadata.RecipeEntry{
			ShareFP:    fp,
			ShareSize:  uint32(len(sh)),
			SecretSize: uint32(len(secret)),
		}
		stats.Secrets++
		for i, s := range shares {
			if i == failedCloud {
				continue
			}
			c.sharePool.Put(s) // only the rebuilt cloud's share travels
		}
		if seen[fp] {
			c.sharePool.Put(sh)
			return nil
		}
		seen[fp] = true
		batch = append(batch, protocol.ShareUpload{
			SecretSeq:  seq,
			SecretSize: uint32(len(secret)),
			Data:       sh,
		})
		batchBytes += len(sh)
		stats.SharesRebuilt++
		stats.BytesReuploads += int64(len(sh))
		if batchBytes >= protocol.BatchBytes {
			return flush()
		}
		return nil
	})
	if err != nil {
		recycleBatch() // the aborted batch still holds pool buffers
		return nil, err
	}
	if err := flush(); err != nil {
		return nil, err
	}
	stats.Restore = *e.stats()
	// Same cross-check Restore applies: a recipe whose FileSize disagrees
	// with the sum of its secret sizes must fail loudly, not be copied
	// onto the replacement cloud.
	if uint64(stats.Restore.Bytes) != e.fileSize {
		return nil, fmt.Errorf("client: repair read %d bytes, recipe says %d", stats.Restore.Bytes, e.fileSize)
	}
	if _, err := target.call(protocol.MsgPutRecipe, newRecipe.Marshal(), protocol.MsgPutOK); err != nil {
		return nil, err
	}
	return stats, nil
}

// RepairEntries heals specific damaged shares on one cloud without
// rebuilding the whole file: only stripes whose share fingerprints are
// in damaged are re-read from k other clouds, re-encoded, and share
// `cloud` re-uploaded. Convergent encoding is deterministic, so each
// rebuilt share reproduces its recipe fingerprint exactly — the server's
// repair-reserve path heals the damaged index entry in place and the
// recipe is untouched (no PutRecipe round trip). The cloud's recipe must
// still be readable there; a lost recipe needs a full Repair.
func (c *Client) RepairEntries(path string, cloud int, damaged []metadata.Fingerprint) (*RepairStats, error) {
	if cloud < 0 || cloud >= c.opts.N {
		return nil, fmt.Errorf("client: cloud index %d out of range", cloud)
	}
	target := c.conns[cloud]
	if target == nil {
		return nil, fmt.Errorf("client: server for cloud %d not connected", cloud)
	}
	targetPath, err := c.pathForCloud(cloud, path)
	if err != nil {
		return nil, err
	}
	reply, err := target.call(protocol.MsgGetRecipe, protocol.EncodeString(targetPath), protocol.MsgRecipe)
	if err != nil {
		return nil, fmt.Errorf("client: recipe for %q on cloud %d: %w (a lost recipe needs a full Repair)", path, cloud, err)
	}
	recipe, err := metadata.UnmarshalRecipe(reply)
	if err != nil {
		return nil, err
	}
	// One stripe per distinct damaged fingerprint: re-encoding any secret
	// that produced the share rebuilds it (dedup means many sequence
	// numbers can reference one share; reading one of them suffices).
	want := make(map[metadata.Fingerprint]bool, len(damaged))
	for _, fp := range damaged {
		want[fp] = true
	}
	var seqs []uint64
	for seq := range recipe.Entries {
		fp := recipe.Entries[seq].ShareFP
		if want[fp] {
			delete(want, fp)
			seqs = append(seqs, uint64(seq))
		}
	}
	stats := &RepairStats{}
	if len(seqs) == 0 {
		return stats, nil
	}
	e, err := c.newRestoreEngine(path, cloud)
	if err != nil {
		return nil, err
	}
	e.restrictTo(seqs)

	arena := secretshare.NewArenaWithPool(&c.sharePool)
	var batch []protocol.ShareUpload
	batchBytes := 0
	recycleBatch := func() {
		for i := range batch {
			c.sharePool.Put(batch[i].Data)
		}
		batch = batch[:0]
		batchBytes = 0
	}
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		_, err := target.call(protocol.MsgPutShares, protocol.EncodeShareBatch(batch), protocol.MsgPutOK)
		recycleBatch()
		return err
	}
	err = e.run(func(seq uint64, secret []byte) error {
		shares, serr := secretshare.SplitWithArena(c.scheme, secret, arena)
		if serr != nil {
			return fmt.Errorf("re-encode secret %d: %w", seq, serr)
		}
		sh := shares[cloud]
		fp := metadata.FingerprintOf(sh)
		for i, s := range shares {
			if i == cloud {
				continue
			}
			c.sharePool.Put(s) // only the rebuilt cloud's share travels
		}
		if fp != recipe.Entries[seq].ShareFP {
			c.sharePool.Put(sh)
			return fmt.Errorf("client: re-encoded share of secret %d does not reproduce its recipe fingerprint", seq)
		}
		stats.Secrets++
		batch = append(batch, protocol.ShareUpload{
			SecretSeq:  seq,
			SecretSize: uint32(len(secret)),
			Data:       sh,
		})
		batchBytes += len(sh)
		stats.SharesRebuilt++
		stats.BytesReuploads += int64(len(sh))
		if batchBytes >= protocol.BatchBytes {
			return flush()
		}
		return nil
	})
	if err != nil {
		recycleBatch()
		return nil, err
	}
	if err := flush(); err != nil {
		return nil, err
	}
	stats.Restore = *e.stats()
	return stats, nil
}
