package container

import (
	"bytes"
	"fmt"
	"testing"

	"cdstore/internal/metadata"
	"cdstore/internal/storage"
)

func fp(s string) metadata.Fingerprint { return metadata.FingerprintOf([]byte(s)) }

func TestContainerMarshalRoundTrip(t *testing.T) {
	c := &Container{
		Name:   "share-u1-000000000000",
		Type:   ShareContainer,
		UserID: 1,
		Entries: []Entry{
			{Key: fp("a"), Data: []byte("share data a")},
			{Key: fp("b"), Data: []byte("share data b, longer")},
			{Key: fp("c"), Data: []byte{}},
		},
	}
	enc := c.Marshal()
	got, err := Unmarshal(c.Name, enc)
	if err != nil {
		t.Fatal(err)
	}
	if got.Type != c.Type || got.UserID != c.UserID || len(got.Entries) != 3 {
		t.Fatalf("header mismatch: %+v", got)
	}
	for i := range c.Entries {
		if got.Entries[i].Key != c.Entries[i].Key || !bytes.Equal(got.Entries[i].Data, c.Entries[i].Data) {
			t.Fatalf("entry %d mismatch", i)
		}
	}
	if d := got.Find(fp("b")); !bytes.Equal(d, []byte("share data b, longer")) {
		t.Fatalf("Find(b) = %q", d)
	}
	if got.Find(fp("zzz")) != nil {
		t.Fatal("Find of absent key returned data")
	}
}

func TestContainerCorruption(t *testing.T) {
	c := &Container{Type: ShareContainer, UserID: 7, Entries: []Entry{{Key: fp("x"), Data: []byte("data")}}}
	enc := c.Marshal()
	cases := map[string]func([]byte) []byte{
		"too small":   func(b []byte) []byte { return b[:8] },
		"crc flip":    func(b []byte) []byte { o := append([]byte(nil), b...); o[10] ^= 1; return o },
		"bad magic":   func(b []byte) []byte { o := append([]byte(nil), b...); o[0] ^= 1; return o },
		"truncated":   func(b []byte) []byte { return b[:len(b)-8] },
		"extra bytes": func(b []byte) []byte { return append(append([]byte(nil), b...), 1, 2, 3) },
	}
	for name, mut := range cases {
		if _, err := Unmarshal("t", mut(enc)); err == nil {
			t.Fatalf("%s: corruption accepted", name)
		}
	}
}

func TestWriterCapacity(t *testing.T) {
	w := NewWriter("c1", ShareContainer, 1, 1000)
	if err := w.Add(fp("a"), make([]byte, 500)); err != nil {
		t.Fatal(err)
	}
	if w.Full() {
		t.Fatal("should not be full yet")
	}
	// A second 500-byte entry would exceed the 1000-byte cap: rejected,
	// and the writer stays under capacity (the Store then rotates to a
	// fresh container).
	if err := w.Add(fp("b"), make([]byte, 500)); err != ErrFull {
		t.Fatalf("want ErrFull, got %v", err)
	}
	if w.Full() {
		t.Fatal("rejected entry must not fill the container")
	}
	// Entries that fit keep being accepted.
	if err := w.Add(fp("c"), make([]byte, 100)); err != nil {
		t.Fatal(err)
	}
	if w.Len() != 2 {
		t.Fatalf("Len = %d, want 2", w.Len())
	}
}

func TestWriterOversizedFirstEntryAllowed(t *testing.T) {
	// §4.5: a very large file recipe gets its own oversized container.
	w := NewWriter("c1", RecipeContainer, 1, 1000)
	big := make([]byte, 5000)
	if err := w.Add(fp("huge"), big); err != nil {
		t.Fatalf("oversized first entry rejected: %v", err)
	}
	if !w.Full() {
		t.Fatal("oversized container should report full")
	}
}

func TestWriterFindInBuffer(t *testing.T) {
	w := NewWriter("c1", ShareContainer, 1, 0)
	w.Add(fp("k"), []byte("v"))
	if d := w.Find(fp("k")); !bytes.Equal(d, []byte("v")) {
		t.Fatalf("Find = %q", d)
	}
	if w.Find(fp("absent")) != nil {
		t.Fatal("absent key found")
	}
}

func TestStoreAddGetFlush(t *testing.T) {
	backend := storage.NewMemory()
	s, err := NewStore(backend, &StoreOptions{Capacity: 2048})
	if err != nil {
		t.Fatal(err)
	}
	// Buffered share readable before any flush.
	name, err := s.AddShare(1, fp("s1"), []byte("share one"))
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.GetEntry(name, fp("s1"))
	if err != nil || !bytes.Equal(got, []byte("share one")) {
		t.Fatalf("buffered read: %q, %v", got, err)
	}
	// Nothing on the backend yet.
	if names, _ := backend.List(); len(names) != 0 {
		t.Fatalf("premature flush: %v", names)
	}
	// Fill past capacity: flush happens automatically.
	for i := 0; i < 10; i++ {
		if _, err := s.AddShare(1, fp(fmt.Sprintf("fill-%d", i)), make([]byte, 512)); err != nil {
			t.Fatal(err)
		}
	}
	if names, _ := backend.List(); len(names) == 0 {
		t.Fatal("no automatic flush after exceeding capacity")
	}
	// Explicit flush persists the remainder, and all entries stay readable.
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err = s.GetEntry(name, fp("s1"))
	if err != nil || !bytes.Equal(got, []byte("share one")) {
		t.Fatalf("post-flush read: %q, %v", got, err)
	}
}

func TestStorePerUserContainers(t *testing.T) {
	s, err := NewStore(storage.NewMemory(), nil)
	if err != nil {
		t.Fatal(err)
	}
	n1, _ := s.AddShare(1, fp("a"), []byte("x"))
	n2, _ := s.AddShare(2, fp("b"), []byte("y"))
	if n1 == n2 {
		t.Fatal("users must not share containers (spatial locality, §4.5)")
	}
}

func TestStoreRecipes(t *testing.T) {
	s, err := NewStore(storage.NewMemory(), &StoreOptions{Capacity: 128})
	if err != nil {
		t.Fatal(err)
	}
	key := metadata.FileKey(1, "/backup.tar")
	recipe := bytes.Repeat([]byte("r"), 4096) // oversized: own container
	name, err := s.AddRecipe(1, key, recipe)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.GetEntry(name, key)
	if err != nil || !bytes.Equal(got, recipe) {
		t.Fatalf("recipe read failed: %v", err)
	}
}

func TestStoreSequenceRecovery(t *testing.T) {
	backend := storage.NewMemory()
	s1, _ := NewStore(backend, nil)
	name1, _ := s1.AddShare(1, fp("a"), []byte("x"))
	s1.Flush()
	// Re-open: new containers must not collide with existing names.
	s2, _ := NewStore(backend, nil)
	name2, _ := s2.AddShare(1, fp("b"), []byte("y"))
	if name1 == name2 {
		t.Fatalf("container name collision after reopen: %s", name1)
	}
	// Old entry still readable via new store.
	got, err := s2.GetEntry(name1, fp("a"))
	if err != nil || !bytes.Equal(got, []byte("x")) {
		t.Fatalf("read across restart: %q, %v", got, err)
	}
}

func TestStoreDelete(t *testing.T) {
	backend := storage.NewMemory()
	s, _ := NewStore(backend, nil)
	name, _ := s.AddShare(1, fp("a"), []byte("x"))
	s.Flush()
	if err := s.Delete(name); err != nil {
		t.Fatal(err)
	}
	if _, err := s.GetEntry(name, fp("a")); err == nil {
		t.Fatal("deleted container still readable")
	}
}

func TestStoreCacheHits(t *testing.T) {
	backend := storage.NewMemory()
	s, _ := NewStore(backend, nil)
	name, _ := s.AddShare(1, fp("a"), []byte("x"))
	s.Flush()
	// Force cache cold by recreating the store.
	s2, _ := NewStore(backend, nil)
	for i := 0; i < 5; i++ {
		if _, err := s2.GetEntry(name, fp("a")); err != nil {
			t.Fatal(err)
		}
	}
	hits, misses := s2.CacheStats()
	if hits < 4 || misses != 1 {
		t.Fatalf("cache stats hits=%d misses=%d; want >=4 hits, 1 miss", hits, misses)
	}
}

func TestTypeString(t *testing.T) {
	if ShareContainer.String() != "share" || RecipeContainer.String() != "recipe" {
		t.Fatal("type strings wrong")
	}
	if Type(9).String() == "" {
		t.Fatal("unknown type should still render")
	}
}
