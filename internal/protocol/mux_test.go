package protocol

import (
	"bytes"
	"encoding/binary"
	"io"
	"testing"
)

// muxFrame builds the raw wire bytes of one mux frame (test helper;
// mirrors WriteMuxMsg without a Conn).
func muxFrame(stream uint32, typ byte, payload []byte) []byte {
	out := make([]byte, 0, 10+len(payload))
	out = append(out, MsgMuxData)
	out = binary.BigEndian.AppendUint32(out, uint32(len(payload)+MuxHeaderSize))
	out = binary.BigEndian.AppendUint32(out, stream)
	out = append(out, typ)
	return append(out, payload...)
}

func TestMuxRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	c := NewConn(&buf)
	payloads := []struct {
		stream uint32
		typ    byte
		body   []byte
	}{
		{1, MsgHello, EncodeHello(42)},
		{7, MsgPutShares, EncodeShareBatch(testBatch(3, 100))},
		{1, MsgBye, nil},
		{0xFFFFFFFF, MsgQuery, []byte{0, 0, 0, 0}},
	}
	for _, p := range payloads {
		if err := c.WriteMuxMsg(p.stream, p.typ, p.body); err != nil {
			t.Fatal(err)
		}
	}
	rd := NewConn(&buf)
	for i, p := range payloads {
		typ, payload, err := rd.ReadMsg()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if typ != MsgMuxData {
			t.Fatalf("frame %d: outer type %d, want MsgMuxData", i, typ)
		}
		stream, ityp, inner, err := DecodeMuxHeader(payload)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if stream != p.stream || ityp != p.typ || !bytes.Equal(inner, p.body) {
			t.Fatalf("frame %d: got (%d,%d,%x), want (%d,%d,%x)",
				i, stream, ityp, inner, p.stream, p.typ, p.body)
		}
	}
}

func TestMuxHeaderErrors(t *testing.T) {
	for _, short := range [][]byte{nil, {1}, {1, 2, 3, 4}} {
		if _, _, _, err := DecodeMuxHeader(short); err == nil {
			t.Errorf("short mux payload %x accepted", short)
		}
	}
	var buf bytes.Buffer
	c := NewConn(&buf)
	if err := c.WriteMuxMsg(1, MsgPutShares, make([]byte, MaxMessage)); err != ErrTooLarge {
		t.Errorf("oversized mux payload: got %v, want ErrTooLarge", err)
	}
	// The inner payload must alias, not copy: mutating the outer payload
	// shows through the inner slice.
	p := muxFrame(3, MsgQuery, []byte{9, 9, 9, 9})[5:]
	_, _, inner, err := DecodeMuxHeader(p)
	if err != nil {
		t.Fatal(err)
	}
	p[len(p)-1] = 0xAA
	if inner[len(inner)-1] != 0xAA {
		t.Fatal("DecodeMuxHeader copied the inner payload; expected aliasing")
	}
	// ...and its capacity must be capped so appends cannot scribble into
	// the frame beyond the message.
	if cap(inner) != len(inner) {
		t.Fatalf("inner capacity %d exceeds length %d", cap(inner), len(inner))
	}
}

// TestMuxReadAllocFloor pins the steady-state allocation count of the
// mux demux path — pooled frame read + mux header split + aliasing
// batch decode — at zero, mirroring TestPutPathDecodeAllocFloor for the
// multiplexed wire. This is the acceptance gate for the gateway tier:
// funneling thousands of sessions through one connection must not
// reintroduce per-message allocation.
func TestMuxReadAllocFloor(t *testing.T) {
	shares := testBatch(64, 1024)
	framed := muxFrame(11, MsgPutShares, EncodeShareBatch(shares))
	conn := NewConn(&repeatReader{data: framed})

	frame := GetFrame()
	defer PutFrame(frame)
	var batch []ShareUpload
	read := func() {
		typ, p, err := conn.ReadMsgInto(frame)
		if err != nil || typ != MsgMuxData {
			t.Fatalf("read: %v %v", typ, err)
		}
		stream, ityp, inner, err := DecodeMuxHeader(p)
		if err != nil || stream != 11 || ityp != MsgPutShares {
			t.Fatalf("mux header: %d %d %v", stream, ityp, err)
		}
		batch, err = DecodeShareBatchInto(batch, inner)
		if err != nil {
			t.Fatal(err)
		}
		if len(batch) != 64 {
			t.Fatalf("decoded %d shares", len(batch))
		}
	}
	for i := 0; i < 3; i++ {
		read() // warm up: grow frame and batch scratch
	}
	allocs := testing.AllocsPerRun(100, read)
	if allocs > 0 {
		t.Fatalf("steady-state mux read path allocates %.1f per message, want 0", allocs)
	}
}

// FuzzMuxFrame feeds attacker bytes to the full mux read stack the
// server runs per frame: outer framing, mux header split, and the inner
// payload decoded as a share batch when it claims to be one. Nothing
// may panic, accepted frames must round-trip through WriteMuxMsg, and
// the aliasing invariants must hold whatever the input.
func FuzzMuxFrame(f *testing.F) {
	// Interleaved streams: two sessions' traffic alternating on one wire.
	inter := append(muxFrame(1, MsgHello, EncodeHello(1)), muxFrame(2, MsgHello, EncodeHello(2))...)
	inter = append(inter, muxFrame(1, MsgPutShares, EncodeShareBatch(testBatch(2, 64)))...)
	inter = append(inter, muxFrame(2, MsgBye, nil)...)
	f.Add(inter)
	f.Add(muxFrame(0, MsgQuery, EncodeFingerprints(nil)))
	f.Add(muxFrame(0xFFFFFFFF, 0xFF, []byte{1, 2, 3})) // unknown stream id + unknown inner type
	// Truncations: a frame cut mid-header and mid-payload.
	full := muxFrame(9, MsgPutShares, EncodeShareBatch(testBatch(1, 32)))
	f.Add(full[:7])
	f.Add(full[:len(full)-5])
	// Lying outer length: claims more payload than follows.
	lie := muxFrame(3, MsgHello, EncodeHello(7))
	binary.BigEndian.PutUint32(lie[1:], 1<<20)
	f.Add(lie)
	// Outer frame too short to hold any mux header.
	f.Add([]byte{MsgMuxData, 0, 0, 0, 2, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		conn := NewConn(struct {
			io.Reader
			io.Writer
		}{bytes.NewReader(data), io.Discard})
		frame := GetFrame()
		defer PutFrame(frame)
		var batch []ShareUpload
		for {
			typ, p, err := conn.ReadMsgInto(frame)
			if err != nil {
				if err == io.EOF || err == io.ErrUnexpectedEOF || err == ErrTooLarge {
					return
				}
				t.Fatalf("unexpected read error class: %v", err)
			}
			if typ != MsgMuxData {
				continue
			}
			stream, ityp, inner, err := DecodeMuxHeader(p)
			if err != nil {
				continue // malformed mux payload: rejected, never panics
			}
			if len(inner) != len(p)-MuxHeaderSize || cap(inner) != len(inner) {
				t.Fatalf("inner slice bounds wrong: len %d cap %d from %d", len(inner), cap(inner), len(p))
			}
			// Accepted mux frames round-trip bit-exactly through the writer.
			var buf bytes.Buffer
			wc := NewConn(&buf)
			if werr := wc.WriteMuxMsg(stream, ityp, inner); werr != nil {
				t.Fatalf("round-trip write rejected accepted frame: %v", werr)
			}
			want := muxFrame(stream, ityp, inner)
			if !bytes.Equal(buf.Bytes(), want) {
				t.Fatalf("round-trip mismatch:\n in  %x\n out %x", want, buf.Bytes())
			}
			// Inner payloads claiming to be share batches face the same
			// decoder the server runs; it must never panic on them.
			if ityp == MsgPutShares {
				batch, _ = DecodeShareBatchInto(batch, inner)
			}
		}
	})
}
