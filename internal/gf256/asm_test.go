package gf256

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// asmKernelNames lists the assembly kernels runnable in this process
// (empty under noasm or on CPUs without SIMD support).
func asmKernelNames() []string {
	var names []string
	for _, l := range asmLevels() {
		names = append(names, asmLevelName(l))
	}
	return names
}

// TestAsmMatchesScalarAllCoefficients pins every available assembly
// kernel to the scalar oracle for all 256 coefficients, across lengths
// that cover the 32/64-byte main loops, the 16-byte tail groups, and
// the byte-wise tails, at unaligned slice offsets.
func TestAsmMatchesScalarAllCoefficients(t *testing.T) {
	names := asmKernelNames()
	if len(names) == 0 {
		t.Skip("no assembly kernel in this build/CPU")
	}
	scalar := NewScalar()
	rng := rand.New(rand.NewSource(21))
	for _, name := range names {
		asm, err := NewWithKernel(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, n := range []int{0, 1, 15, 16, 17, 31, 32, 33, 47, 48, 63, 64, 65, 127, 257, 1024, 4099} {
			for _, off := range []int{0, 1, 7, 13} {
				srcBuf := make([]byte, n+off)
				dstBuf := make([]byte, n+off)
				rng.Read(srcBuf)
				rng.Read(dstBuf)
				src, dst := srcBuf[off:], dstBuf[off:]
				for c := 0; c < Order; c++ {
					wantAdd := append([]byte(nil), dst...)
					gotAdd := append([]byte(nil), dst...)
					scalar.MulAddSlice(byte(c), src, wantAdd)
					asm.MulAddSlice(byte(c), src, gotAdd)
					if !bytes.Equal(gotAdd, wantAdd) {
						t.Fatalf("%s MulAddSlice len=%d off=%d c=%d diverges from scalar", name, n, off, c)
					}
					wantMul := make([]byte, n)
					gotMul := append([]byte(nil), dst...)
					scalar.MulSlice(byte(c), src, wantMul)
					asm.MulSlice(byte(c), src, gotMul)
					if !bytes.Equal(gotMul, wantMul) {
						t.Fatalf("%s MulSlice len=%d off=%d c=%d diverges from scalar", name, n, off, c)
					}
				}
			}
		}
	}
}

// TestXorAsmMatchesReference pins the assembly xor kernels (both the
// MulAddSlice c=1 path and package-level AddSlice feed through them).
func TestXorAsmMatchesReference(t *testing.T) {
	names := asmKernelNames()
	if len(names) == 0 {
		t.Skip("no assembly kernel in this build/CPU")
	}
	rng := rand.New(rand.NewSource(22))
	for _, name := range names {
		asm, err := NewWithKernel(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, n := range []int{0, 1, 15, 16, 17, 31, 32, 33, 64, 65, 1023} {
			for _, off := range []int{0, 3} {
				srcBuf := make([]byte, n+off)
				dstBuf := make([]byte, n+off)
				rng.Read(srcBuf)
				rng.Read(dstBuf)
				src, dst := srcBuf[off:], dstBuf[off:]
				want := make([]byte, n)
				for i := range want {
					want[i] = dst[i] ^ src[i]
				}
				got := append([]byte(nil), dst...)
				asm.MulAddSlice(1, src, got)
				if !bytes.Equal(got, want) {
					t.Fatalf("%s MulAddSlice c=1 len=%d off=%d wrong", name, n, off)
				}
			}
		}
	}
}

// TestAsmFieldNeverBuildsWideTables is the memory acceptance criterion:
// when an assembly kernel is dispatched, the 128KB-per-coefficient
// wide-table LRU must stay empty no matter how many coefficients the
// bulk operations touch — the SIMD path runs off the 8KB nib table set
// alone (8MB/Field worst case saved in every process).
func TestAsmFieldNeverBuildsWideTables(t *testing.T) {
	if bestAsm == asmNone {
		t.Skip("no assembly kernel in this build/CPU")
	}
	f, err := NewWithKernel("asm")
	if err != nil {
		t.Fatal(err)
	}
	if f.nib == nil {
		t.Fatal("asm field has no nib tables")
	}
	src := make([]byte, 4096)
	dst := make([]byte, 4096)
	rand.New(rand.NewSource(23)).Read(src)
	for c := 0; c < Order; c++ {
		f.MulAddSlice(byte(c), src, dst)
		f.MulSlice(byte(c), src, dst)
	}
	if n := f.wideResident(); n != 0 {
		t.Fatalf("asm field built %d wide tables; want 0 (kernel-aware table selection)", n)
	}
	// And the converse: a wide field must not carry the nib set.
	if w := NewWide(); w.nib != nil {
		t.Fatal("wide field built nib tables it never reads")
	}
}

// TestNewDispatchesBestKernel: New must select the best assembly level
// where one exists, the wide kernel otherwise (absent an env override,
// which the test runner does not set for this package's tests).
func TestNewDispatchesBestKernel(t *testing.T) {
	if dispatchKernel() != (kernelChoice{kind: kernelWide}) && bestAsm == asmNone {
		t.Fatalf("dispatched %q with no asm available", dispatchKernel().name())
	}
	want := "wide"
	if bestAsm != asmNone {
		want = asmLevelName(bestAsm)
	}
	if got := New().Kernel(); got != want {
		// An env override in the environment legitimately changes this;
		// only fail when none is set.
		if dispatched := dispatchKernel().name(); dispatched == got && got != want {
			t.Skipf("dispatch overridden to %q by environment", got)
		}
		t.Fatalf("New dispatched %q, want %q", got, want)
	}
}

// TestNewWithKernelNames: every listed kernel constructs and reports
// its own name; unknown names fail.
func TestNewWithKernelNames(t *testing.T) {
	for _, name := range Kernels() {
		f, err := NewWithKernel(name)
		if err != nil {
			t.Fatalf("NewWithKernel(%q): %v", name, err)
		}
		if got := f.Kernel(); got != name {
			t.Fatalf("NewWithKernel(%q).Kernel() = %q", name, got)
		}
	}
	if _, err := NewWithKernel("pshufb9000"); err == nil {
		t.Fatal("unknown kernel name accepted")
	}
	if bestAsm == asmNone {
		if _, err := NewWithKernel("asm"); err == nil {
			t.Fatal(`NewWithKernel("asm") succeeded with no assembly available`)
		}
	} else if f, _ := NewWithKernel("asm"); f.Kernel() != asmLevelName(bestAsm) {
		t.Fatalf(`NewWithKernel("asm") resolved to %q, want best level %q`, f.Kernel(), asmLevelName(bestAsm))
	}
}

// TestEnvKernelOverride exercises the CDSTORE_GF256_KERNEL plumbing by
// resetting the once-per-process dispatch cache around each case. The
// cache (and the process's real environment) is restored afterwards so
// other tests see normal dispatch.
func TestEnvKernelOverride(t *testing.T) {
	reset := func() { dispatchOnce = sync.Once{} }
	defer func() {
		// Recompute the real dispatch with the test env cleaned up.
		reset()
	}()
	cases := []struct {
		env  string
		want string
	}{
		{"scalar", "scalar"},
		{"wide", "wide"},
		{"not-a-kernel", ""}, // ignored -> normal dispatch
	}
	if bestAsm != asmNone {
		cases = append(cases,
			struct{ env, want string }{"asm", asmLevelName(bestAsm)},
			struct{ env, want string }{asmLevelName(bestAsm), asmLevelName(bestAsm)})
	} else {
		// "asm" unavailable must fall back to normal dispatch, not fail.
		cases = append(cases, struct{ env, want string }{"asm", ""})
	}
	for _, tc := range cases {
		t.Run(tc.env, func(t *testing.T) {
			t.Setenv(EnvKernel, tc.env)
			reset()
			want := tc.want
			if want == "" {
				want = "wide"
				if bestAsm != asmNone {
					want = asmLevelName(bestAsm)
				}
			}
			if got := New().Kernel(); got != want {
				t.Fatalf("%s=%q dispatched %q, want %q", EnvKernel, tc.env, got, want)
			}
		})
	}
}

// TestKernelsListShape sanity-checks the public kernel inventory.
func TestKernelsListShape(t *testing.T) {
	ks := Kernels()
	if len(ks) < 2 || ks[0] != "scalar" || ks[1] != "wide" {
		t.Fatalf("Kernels() = %v, want scalar and wide first", ks)
	}
	if want := 2 + len(asmLevels()); len(ks) != want {
		t.Fatalf("Kernels() = %v, want %d entries", ks, want)
	}
}

func benchmarkMulAddKernel(b *testing.B, name string, size int) {
	f, err := NewWithKernel(name)
	if err != nil {
		b.Skip(err)
	}
	src := make([]byte, size)
	dst := make([]byte, size)
	rand.New(rand.NewSource(2)).Read(src)
	f.MulAddSlice(173, src, dst) // build any lazy tables outside the loop
	b.SetBytes(int64(size))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.MulAddSlice(173, src, dst)
	}
}

func BenchmarkMulAddSliceKernels(b *testing.B) {
	for _, name := range Kernels() {
		for _, size := range []int{4 << 10, 64 << 10} {
			b.Run(fmt.Sprintf("%s/%dKB", name, size>>10), func(b *testing.B) {
				benchmarkMulAddKernel(b, name, size)
			})
		}
	}
}
