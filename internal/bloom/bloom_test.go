package bloom

import (
	"fmt"
	"testing"
)

func TestNoFalseNegatives(t *testing.T) {
	f := NewWithEstimates(1000, 0.01)
	for i := 0; i < 1000; i++ {
		f.Add([]byte(fmt.Sprintf("key-%d", i)))
	}
	for i := 0; i < 1000; i++ {
		if !f.MayContain([]byte(fmt.Sprintf("key-%d", i))) {
			t.Fatalf("false negative for key-%d", i)
		}
	}
}

func TestFalsePositiveRate(t *testing.T) {
	f := NewWithEstimates(10000, 0.01)
	for i := 0; i < 10000; i++ {
		f.Add([]byte(fmt.Sprintf("present-%d", i)))
	}
	fp := 0
	const probes = 20000
	for i := 0; i < probes; i++ {
		if f.MayContain([]byte(fmt.Sprintf("absent-%d", i))) {
			fp++
		}
	}
	rate := float64(fp) / probes
	if rate > 0.03 {
		t.Fatalf("false positive rate %.4f, want <= 0.03", rate)
	}
}

func TestEmptyFilterContainsNothing(t *testing.T) {
	f := NewWithEstimates(100, 0.01)
	if f.MayContain([]byte("anything")) {
		t.Fatal("empty filter claims membership")
	}
	if f.ApproxCount() != 0 {
		t.Fatal("empty filter has nonzero count")
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	f := NewWithEstimates(500, 0.02)
	keys := [][]byte{[]byte("a"), []byte("bb"), []byte("ccc"), {0x00, 0xff}}
	for _, k := range keys {
		f.Add(k)
	}
	g, err := Unmarshal(f.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range keys {
		if !g.MayContain(k) {
			t.Fatalf("unmarshalled filter lost key %q", k)
		}
	}
	if g.ApproxCount() != f.ApproxCount() {
		t.Fatal("count not preserved")
	}
	if g.SizeBytes() != f.SizeBytes() {
		t.Fatal("size not preserved")
	}
}

func TestUnmarshalCorrupt(t *testing.T) {
	if _, err := Unmarshal([]byte("short")); err != ErrCorrupt {
		t.Fatalf("want ErrCorrupt, got %v", err)
	}
	f := NewWithEstimates(100, 0.01)
	enc := f.Marshal()
	if _, err := Unmarshal(enc[:len(enc)-1]); err != ErrCorrupt {
		t.Fatalf("truncated bits: want ErrCorrupt, got %v", err)
	}
}

func TestDegenerateParams(t *testing.T) {
	// All of these must still behave as filters (no panics, no false negatives).
	for _, f := range []*Filter{New(0, 0), NewWithEstimates(0, 0), NewWithEstimates(5, 2)} {
		f.Add([]byte("x"))
		if !f.MayContain([]byte("x")) {
			t.Fatal("false negative on degenerate filter")
		}
	}
}

func BenchmarkAdd(b *testing.B) {
	f := NewWithEstimates(uint64(b.N)+1, 0.01)
	key := make([]byte, 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key[0] = byte(i)
		key[1] = byte(i >> 8)
		f.Add(key)
	}
}

func BenchmarkMayContain(b *testing.B) {
	f := NewWithEstimates(100000, 0.01)
	for i := 0; i < 100000; i++ {
		f.Add([]byte(fmt.Sprintf("key-%d", i)))
	}
	key := []byte("key-55555")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.MayContain(key)
	}
}
