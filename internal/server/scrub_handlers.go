package server

import (
	"cdstore/internal/index"
	"cdstore/internal/metadata"
	"cdstore/internal/protocol"
	"cdstore/internal/scrub"
)

// Scrubber exposes the server's integrity scrubber (harness access).
func (s *Server) Scrubber() *scrub.Scrubber { return s.scrubber }

// RunScrubPass runs one synchronous scrub pass over the container store.
func (s *Server) RunScrubPass() (*scrub.PassStats, error) { return s.scrubber.RunPass() }

// ScrubReport assembles the damage inventory the repair scheduler polls:
// scrubber lifetime counters, the set of share entries currently flagged
// damaged, and — when there is outstanding damage — the files whose
// stripes it touches, so repairs can be targeted per file. The file walk
// runs under the GC read lock: a concurrent quarantine or GC rewrite
// cannot delete a recipe container mid-walk and fake a lost recipe.
func (s *Server) ScrubReport() (*protocol.ScrubReport, error) {
	c := s.scrubber.Counters()
	r := &protocol.ScrubReport{
		Paused:            s.scrubber.Paused(),
		Passes:            c.Passes,
		ContainersScanned: c.ContainersScanned,
		BytesScanned:      c.BytesScanned,
		EntriesVerified:   c.EntriesVerified,
		DamagedContainers: c.DamagedContainers,
		DamagedEntries:    c.DamagedEntries,
		QuarantinedShares: c.QuarantinedShares,
		LostRecipes:       c.LostRecipes,
		RepairedShares:    s.ix.RepairedShares(),
	}
	if s.flow != nil {
		r.InflightBytes = uint64(s.flow.inflightBytes())
	}
	s.gcMu.RLock()
	defer s.gcMu.RUnlock()
	damaged, err := s.ix.DamagedShares()
	if err != nil {
		return nil, err
	}
	r.DamagedOutstanding = uint64(len(damaged))
	damagedSet := make(map[metadata.Fingerprint]bool, len(damaged))
	for _, e := range damaged {
		damagedSet[e.Fingerprint] = true
	}
	err = s.ix.ScanFiles(func(fe *index.FileEntry) error {
		raw, gerr := s.store.GetEntry(fe.RecipeContainer, metadata.FileKey(fe.UserID, fe.Path))
		if gerr != nil {
			r.Affected = append(r.Affected, protocol.AffectedFile{
				UserID: fe.UserID, Path: fe.Path, RecipeLost: true,
			})
			return nil
		}
		if len(damagedSet) == 0 {
			return nil
		}
		rec, perr := metadata.UnmarshalRecipe(raw)
		if perr != nil {
			// Readable but unparseable recipe bytes are as good as lost.
			r.Affected = append(r.Affected, protocol.AffectedFile{
				UserID: fe.UserID, Path: fe.Path, RecipeLost: true,
			})
			return nil
		}
		// Recipes reference deduplicated shares many times; report each
		// damaged fingerprint once per file.
		var hit []metadata.Fingerprint
		seen := make(map[metadata.Fingerprint]bool)
		for i := range rec.Entries {
			fp := rec.Entries[i].ShareFP
			if damagedSet[fp] && !seen[fp] {
				seen[fp] = true
				hit = append(hit, fp)
			}
		}
		if len(hit) > 0 {
			r.Affected = append(r.Affected, protocol.AffectedFile{
				UserID: fe.UserID, Path: fe.Path, Damaged: hit,
			})
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return r, nil
}

func (ss *session) handleScrubStatus() error {
	r, err := ss.srv.ScrubReport()
	if err != nil {
		return err
	}
	return ss.send(protocol.MsgScrubReport, protocol.EncodeScrubReport(r))
}

// handleGetShareContainers maps fingerprints to the containers holding
// them, in query order. Ownership gates each answer exactly like
// GetShares: a fingerprint the session's user does not own answers ""
// (indistinguishable from unknown), so container placement leaks nothing
// across users. Damaged or quarantined shares also answer "" — their
// bytes are gone, so there is no container to blacklist.
func (ss *session) handleGetShareContainers(payload []byte) error {
	fps, err := protocol.DecodeFingerprints(payload)
	if err != nil {
		return badRequest("bad container query")
	}
	entries, err := ss.srv.ix.LookupShares(fps)
	if err != nil {
		return err
	}
	names := make([]string, len(fps))
	for i, e := range entries {
		if e == nil || e.Damaged {
			continue
		}
		if _, ok := e.Refs[ss.userID]; !ok {
			continue
		}
		names[i] = e.Container
	}
	return ss.send(protocol.MsgShareContainers, protocol.EncodeContainerNames(names))
}

func (ss *session) handleScrubControl(payload []byte) error {
	op, err := protocol.DecodeScrubControl(payload)
	if err != nil {
		return badRequest("bad scrub control")
	}
	switch op {
	case protocol.ScrubOpRunPass:
		// Synchronous: the ack means the pass (including any quarantine)
		// finished, so a follow-up MsgScrubStatus sees its results.
		if _, err := ss.srv.scrubber.RunPass(); err != nil {
			return err
		}
	case protocol.ScrubOpPause:
		ss.srv.scrubber.Pause()
	case protocol.ScrubOpResume:
		ss.srv.scrubber.Resume()
	default:
		return badRequest("unknown scrub op %d", op)
	}
	return ss.send(protocol.MsgPutOK, protocol.EncodePutOK(1))
}
