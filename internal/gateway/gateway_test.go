package gateway_test

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"cdstore/internal/client"
	"cdstore/internal/gateway"
	"cdstore/internal/protocol"
	"cdstore/internal/server"
	"cdstore/internal/storage"
)

// testServer builds one in-process cloud server.
func testServer(t *testing.T, i, n, k int) *server.Server {
	t.Helper()
	srv, err := server.New(server.Config{
		CloudIndex: i, N: n, K: k,
		IndexDir: t.TempDir(),
		Backend:  storage.NewMemory(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv
}

// testGateway fronts one server with a gateway whose upstream pool runs
// over net.Pipe.
func testGateway(t *testing.T, srv *server.Server, conns int) *gateway.Gateway {
	t.Helper()
	gw, err := gateway.New(gateway.Config{
		Dial: func() (net.Conn, error) {
			a, b := net.Pipe()
			go srv.ServeConn(a)
			return b, nil
		},
		UpstreamConns: conns,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { gw.Close() })
	return gw
}

// gatewayDialer gives a client a downstream connection into gw.
func gatewayDialer(gw *gateway.Gateway) client.Dialer {
	return func() (net.Conn, error) {
		a, b := net.Pipe()
		go gw.ServeDownstream(a)
		return b, nil
	}
}

// TestBackupRestoreThroughGateway runs the full client workflow —
// backup, list, restore, delete — against a 4-cloud deployment fronted
// entirely by gateways. The relay must be protocol-transparent: the
// client code path is identical to dialing servers directly.
func TestBackupRestoreThroughGateway(t *testing.T) {
	const n, k = 4, 3
	dialers := make([]client.Dialer, n)
	gws := make([]*gateway.Gateway, n)
	for i := 0; i < n; i++ {
		srv := testServer(t, i, n, k)
		gws[i] = testGateway(t, srv, 2)
		dialers[i] = gatewayDialer(gws[i])
	}
	c, err := client.Connect(client.Options{UserID: 1, N: n, K: k, EncodeThreads: 2}, dialers)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	data := bytes.Repeat([]byte("through the gateway "), 20000) // ~400KB
	if _, err := c.Backup("/gw.tar", bytes.NewReader(data)); err != nil {
		t.Fatal(err)
	}
	files, err := c.ListFiles()
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 1 || files[0].Path != "/gw.tar" {
		t.Fatalf("listing through gateway: %+v", files)
	}
	var out bytes.Buffer
	if _, err := c.Restore("/gw.tar", &out); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), data) {
		t.Fatal("restore through gateway corrupted data")
	}
	if err := c.Delete("/gw.tar"); err != nil {
		t.Fatal(err)
	}
	for i, gw := range gws {
		st := gw.Stats()
		if st.UpstreamDials > 2 {
			t.Fatalf("gateway %d dialed upstream %d times, pool is 2", i, st.UpstreamDials)
		}
		if st.Sessions == 0 || st.Relayed == 0 {
			t.Fatalf("gateway %d saw no traffic: %+v", i, st)
		}
	}
}

// TestManySessionsShareUpstreams is the amortization property itself:
// many concurrent logical sessions, each doing the hello/put/bye dance,
// must ride a two-connection upstream pool — sessions scale, upstream
// dials do not.
func TestManySessionsShareUpstreams(t *testing.T) {
	const sessions = 64
	srv := testServer(t, 0, 4, 3)
	gw := testGateway(t, srv, 2)

	var wg sync.WaitGroup
	errs := make(chan error, sessions)
	for s := 0; s < sessions; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			a, b := net.Pipe()
			go gw.ServeDownstream(a)
			pc := protocol.NewConn(b)
			defer pc.Close()
			exchange := func(typ byte, payload []byte, want byte) error {
				if err := pc.WriteMsg(typ, payload); err != nil {
					return err
				}
				rtyp, reply, err := pc.ReadMsg()
				if err != nil {
					return err
				}
				if rtyp != want {
					return fmt.Errorf("session %d: reply %d (%s), want %d", s, rtyp, reply, want)
				}
				return nil
			}
			if err := exchange(protocol.MsgHello, protocol.EncodeHello(uint64(s%8)), protocol.MsgHelloOK); err != nil {
				errs <- err
				return
			}
			data := []byte(fmt.Sprintf("session %d share", s))
			batch := protocol.EncodeShareBatch([]protocol.ShareUpload{
				{SecretSeq: 0, SecretSize: uint32(len(data)), Data: data},
			})
			if err := exchange(protocol.MsgPutShares, batch, protocol.MsgPutOK); err != nil {
				errs <- err
				return
			}
			errs <- pc.WriteMsg(protocol.MsgBye, nil)
		}(s)
	}
	wg.Wait()
	for i := 0; i < sessions; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	st := gw.Stats()
	if st.Sessions != sessions {
		t.Fatalf("sessions %d, want %d", st.Sessions, sessions)
	}
	if st.UpstreamDials > 2 {
		t.Fatalf("%d sessions forced %d upstream dials; pool is 2", sessions, st.UpstreamDials)
	}
	if got := srv.Stats().SharesStored; got != sessions {
		t.Fatalf("server stored %d shares, want %d", got, sessions)
	}
}

// TestUpstreamLossSurfacesAndRedials kills every pooled upstream
// connection mid-deployment: the session that was riding one gets an
// in-band error (its server-side state died with the connection), and
// the next fresh session transparently triggers a redial and succeeds.
func TestUpstreamLossSurfacesAndRedials(t *testing.T) {
	srv := testServer(t, 0, 4, 3)
	var mu sync.Mutex
	var upstreams []net.Conn
	gw, err := gateway.New(gateway.Config{
		Dial: func() (net.Conn, error) {
			a, b := net.Pipe()
			go srv.ServeConn(a)
			mu.Lock()
			upstreams = append(upstreams, b)
			mu.Unlock()
			return b, nil
		},
		UpstreamConns: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer gw.Close()

	newSession := func() (net.Conn, *protocol.Conn) {
		a, b := net.Pipe()
		go gw.ServeDownstream(a)
		b.SetDeadline(time.Now().Add(5 * time.Second))
		return b, protocol.NewConn(b)
	}
	exchange := func(pc *protocol.Conn, typ byte, payload []byte) (byte, []byte, error) {
		if err := pc.WriteMsg(typ, payload); err != nil {
			return 0, nil, err
		}
		return pc.ReadMsg()
	}

	_, pc1 := newSession()
	defer pc1.Close()
	if rtyp, _, err := exchange(pc1, protocol.MsgHello, protocol.EncodeHello(1)); err != nil || rtyp != protocol.MsgHelloOK {
		t.Fatalf("first session hello: %d %v", rtyp, err)
	}

	// Sever the pooled upstream connection under the live session.
	mu.Lock()
	for _, c := range upstreams {
		c.Close()
	}
	severed := len(upstreams)
	mu.Unlock()
	if severed != 1 {
		t.Fatalf("pool of 1 dialed %d times before failure", severed)
	}

	// The riding session must see the failure, not hang: either an
	// in-band internal error or its downstream connection dropping.
	rtyp, reply, err := exchange(pc1, protocol.MsgListFiles, nil)
	if err == nil {
		if rtyp != protocol.MsgError {
			t.Fatalf("request on severed upstream got reply %d: %s", rtyp, reply)
		}
		re, derr := protocol.DecodeError(reply)
		if derr != nil || re.Code != protocol.CodeInternal {
			t.Fatalf("severed-upstream error: %+v %v", re, derr)
		}
	} else if errors.Is(err, protocol.ErrTooLarge) {
		t.Fatalf("unexpected framing error: %v", err)
	}

	// A fresh session redials and works.
	_, pc2 := newSession()
	defer pc2.Close()
	if rtyp, _, err := exchange(pc2, protocol.MsgHello, protocol.EncodeHello(2)); err != nil || rtyp != protocol.MsgHelloOK {
		t.Fatalf("post-failure session hello: %d %v", rtyp, err)
	}
	if rtyp, _, err := exchange(pc2, protocol.MsgListFiles, nil); err != nil || rtyp != protocol.MsgFileList {
		t.Fatalf("post-failure session list: %d %v", rtyp, err)
	}
	if dials := gw.Stats().UpstreamDials; dials != 2 {
		t.Fatalf("dials %d, want 2 (original + one redial)", dials)
	}
}

// TestUnreachableUpstreamReportsInBand: when no upstream can be dialed
// at all, the downstream client gets a protocol-level error, not a
// silent hang.
func TestUnreachableUpstreamReportsInBand(t *testing.T) {
	gw, err := gateway.New(gateway.Config{
		Dial:          func() (net.Conn, error) { return nil, errors.New("cloud down") },
		UpstreamConns: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer gw.Close()
	a, b := net.Pipe()
	go gw.ServeDownstream(a)
	b.SetDeadline(time.Now().Add(5 * time.Second))
	pc := protocol.NewConn(b)
	defer pc.Close()
	if err := pc.WriteMsg(protocol.MsgHello, protocol.EncodeHello(1)); err != nil {
		t.Fatal(err)
	}
	rtyp, reply, err := pc.ReadMsg()
	if err != nil {
		t.Fatal(err)
	}
	if rtyp != protocol.MsgError {
		t.Fatalf("reply %d", rtyp)
	}
	re, derr := protocol.DecodeError(reply)
	if derr != nil || re.Code != protocol.CodeInternal {
		t.Fatalf("error: %+v %v", re, derr)
	}
}

// TestGatewayServeAcceptLoop exercises the listener-based entry point
// end to end over real TCP.
func TestGatewayServeAcceptLoop(t *testing.T) {
	srv := testServer(t, 0, 4, 3)
	gw := testGateway(t, srv, 2)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go gw.Serve(ln)

	nc, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	pc := protocol.NewConn(nc)
	defer pc.Close()
	if err := pc.WriteMsg(protocol.MsgHello, protocol.EncodeHello(7)); err != nil {
		t.Fatal(err)
	}
	rtyp, _, err := pc.ReadMsg()
	if err != nil || rtyp != protocol.MsgHelloOK {
		t.Fatalf("hello over TCP through gateway: %d %v", rtyp, err)
	}
	if err := gw.Close(); err != nil {
		t.Fatal(err)
	}
}
