package index

import (
	"fmt"
	"testing"

	"cdstore/internal/metadata"
)

func openTestIndex(t *testing.T) *Index {
	t.Helper()
	ix, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ix.Close() })
	return ix
}

func fp(s string) metadata.Fingerprint { return metadata.FingerprintOf([]byte(s)) }

func TestShareEntryRoundTrip(t *testing.T) {
	ix := openTestIndex(t)
	e := &ShareEntry{
		Fingerprint: fp("share-1"),
		Container:   "share-u1-000000000003",
		Size:        2731,
		Refs:        map[uint64]uint32{1: 2, 9: 1},
	}
	if err := ix.PutShare(e); err != nil {
		t.Fatal(err)
	}
	got, err := ix.LookupShare(fp("share-1"))
	if err != nil {
		t.Fatal(err)
	}
	if got.Container != e.Container || got.Size != e.Size || len(got.Refs) != 2 ||
		got.Refs[1] != 2 || got.Refs[9] != 1 {
		t.Fatalf("got %+v", got)
	}
	if _, err := ix.LookupShare(fp("absent")); err != ErrNotFound {
		t.Fatalf("want ErrNotFound, got %v", err)
	}
}

func TestShareOwnedByIsPerUser(t *testing.T) {
	// The side-channel defence: a share owned only by user 1 must look
	// absent to user 2's intra-user dedup query.
	ix := openTestIndex(t)
	ix.PutShare(&ShareEntry{Fingerprint: fp("x"), Container: "c", Size: 10, Refs: map[uint64]uint32{1: 1}})
	owned, err := ix.ShareOwnedBy(fp("x"), 1)
	if err != nil || !owned {
		t.Fatalf("owner query: %v %v", owned, err)
	}
	owned, err = ix.ShareOwnedBy(fp("x"), 2)
	if err != nil || owned {
		t.Fatal("non-owner sees another user's share: side channel!")
	}
	owned, err = ix.ShareOwnedBy(fp("not-there"), 1)
	if err != nil || owned {
		t.Fatal("absent share reported owned")
	}
}

func TestAddAndReleaseShareRefs(t *testing.T) {
	ix := openTestIndex(t)
	ix.PutShare(&ShareEntry{Fingerprint: fp("s"), Container: "c", Size: 5, Refs: map[uint64]uint32{1: 1}})
	if err := ix.AddShareRef(fp("s"), 1); err != nil {
		t.Fatal(err)
	}
	if err := ix.AddShareRef(fp("s"), 2); err != nil {
		t.Fatal(err)
	}
	e, _ := ix.LookupShare(fp("s"))
	if e.Refs[1] != 2 || e.Refs[2] != 1 {
		t.Fatalf("refs = %v", e.Refs)
	}
	// Release one of user 1's two refs.
	rem, err := ix.ReleaseShareRef(fp("s"), 1)
	if err != nil || rem != 2 {
		t.Fatalf("release 1: rem=%d err=%v", rem, err)
	}
	// Release the rest.
	rem, _ = ix.ReleaseShareRef(fp("s"), 1)
	if rem != 1 {
		t.Fatalf("release 2: rem=%d", rem)
	}
	rem, _ = ix.ReleaseShareRef(fp("s"), 2)
	if rem != 0 {
		t.Fatalf("release 3: rem=%d", rem)
	}
	// Entry fully removed.
	if _, err := ix.LookupShare(fp("s")); err != ErrNotFound {
		t.Fatalf("zero-ref share should be deleted: %v", err)
	}
}

func TestReleaseAbsentShare(t *testing.T) {
	ix := openTestIndex(t)
	if _, err := ix.ReleaseShareRef(fp("ghost"), 1); err != ErrNotFound {
		t.Fatalf("want ErrNotFound, got %v", err)
	}
}

func TestFileEntryRoundTrip(t *testing.T) {
	ix := openTestIndex(t)
	e := &FileEntry{
		UserID:          42,
		Path:            "/home/u42/backup-week3.tar",
		FileSize:        1 << 32,
		NumSecrets:      524288,
		RecipeContainer: "recipe-u42-000000000007",
	}
	if err := ix.PutFile(e); err != nil {
		t.Fatal(err)
	}
	got, err := ix.LookupFile(42, e.Path)
	if err != nil {
		t.Fatal(err)
	}
	if *got != *e {
		t.Fatalf("got %+v, want %+v", got, e)
	}
	// Same path for another user is absent (key includes user ID).
	if _, err := ix.LookupFile(43, e.Path); err != ErrNotFound {
		t.Fatalf("cross-user file lookup: %v", err)
	}
}

func TestListFilesPerUser(t *testing.T) {
	ix := openTestIndex(t)
	for i := 0; i < 5; i++ {
		ix.PutFile(&FileEntry{UserID: 1, Path: fmt.Sprintf("/u1/f%d", i), RecipeContainer: "r"})
	}
	for i := 0; i < 3; i++ {
		ix.PutFile(&FileEntry{UserID: 2, Path: fmt.Sprintf("/u2/f%d", i), RecipeContainer: "r"})
	}
	l1, err := ix.ListFiles(1)
	if err != nil || len(l1) != 5 {
		t.Fatalf("user 1 list: %d, %v", len(l1), err)
	}
	l2, err := ix.ListFiles(2)
	if err != nil || len(l2) != 3 {
		t.Fatalf("user 2 list: %d, %v", len(l2), err)
	}
	for _, e := range l1 {
		if e.UserID != 1 {
			t.Fatal("user 1 listing leaked another user's file")
		}
	}
}

func TestDeleteFile(t *testing.T) {
	ix := openTestIndex(t)
	ix.PutFile(&FileEntry{UserID: 1, Path: "/f", RecipeContainer: "r"})
	if err := ix.DeleteFile(1, "/f"); err != nil {
		t.Fatal(err)
	}
	if _, err := ix.LookupFile(1, "/f"); err != ErrNotFound {
		t.Fatalf("deleted file still present: %v", err)
	}
}

func TestOverwriteFileEntry(t *testing.T) {
	// Re-uploading the same path replaces the recipe reference.
	ix := openTestIndex(t)
	ix.PutFile(&FileEntry{UserID: 1, Path: "/f", RecipeContainer: "r1"})
	ix.PutFile(&FileEntry{UserID: 1, Path: "/f", RecipeContainer: "r2"})
	got, _ := ix.LookupFile(1, "/f")
	if got.RecipeContainer != "r2" {
		t.Fatalf("RecipeContainer = %s, want r2", got.RecipeContainer)
	}
	l, _ := ix.ListFiles(1)
	if len(l) != 1 {
		t.Fatalf("list has %d entries, want 1", len(l))
	}
}

func TestCountShares(t *testing.T) {
	ix := openTestIndex(t)
	for i := 0; i < 7; i++ {
		ix.PutShare(&ShareEntry{Fingerprint: fp(fmt.Sprint(i)), Container: "c", Refs: map[uint64]uint32{1: 1}})
	}
	n, err := ix.CountShares()
	if err != nil || n != 7 {
		t.Fatalf("CountShares = %d, %v", n, err)
	}
}

func TestPersistenceAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	ix, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	ix.PutShare(&ShareEntry{Fingerprint: fp("durable"), Container: "c", Size: 1, Refs: map[uint64]uint32{5: 3}})
	ix.PutFile(&FileEntry{UserID: 5, Path: "/p", RecipeContainer: "rc"})
	ix.Close()
	ix2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer ix2.Close()
	e, err := ix2.LookupShare(fp("durable"))
	if err != nil || e.Refs[5] != 3 {
		t.Fatalf("share after reopen: %+v, %v", e, err)
	}
	f, err := ix2.LookupFile(5, "/p")
	if err != nil || f.RecipeContainer != "rc" {
		t.Fatalf("file after reopen: %+v, %v", f, err)
	}
}
