package client

import (
	"sync"
	"sync/atomic"
)

// reorderRing resequences decode results for the restore writer. The
// previous shape — a shared results channel feeding a pending
// map[pos]decodedSecret — made every decode worker contend on one
// channel lock and cost a map insert+delete per secret even when
// results arrived nearly in order (the common case: windows decode
// roughly front to back). The ring shards that contention: position pos
// lives in slot pos%capacity under that slot's own mutex+cond, so
// workers completing different positions never touch the same lock, and
// the in-order consumer pays one slot handoff per secret, no hashing.
//
// Positions must be dispatched to producers in ascending order (the
// fetcher walks them sequentially), though producers may complete them
// in any order. Capacity should exceed the maximum producer lead over
// the consumer — pipeline window + decode threads covers it: at most
// one window queued in the jobs channel plus one job in each worker's
// hands — but correctness does not depend on that sizing: a producer
// running ahead of the consumer's current lap blocks on its slot until
// the consumer catches up.
type reorderRing struct {
	slots []reorderSlot
	// base is the consumer's next position; a producer holding a
	// position >= base+capacity waits for the consumer's lap.
	base    atomic.Uint64
	aborted atomic.Bool
}

type reorderSlot struct {
	mu   sync.Mutex
	cond sync.Cond
	full bool
	val  decodedSecret
}

func newReorderRing(capacity int) *reorderRing {
	if capacity < 1 {
		capacity = 1
	}
	r := &reorderRing{slots: make([]reorderSlot, capacity)}
	for i := range r.slots {
		r.slots[i].cond.L = &r.slots[i].mu
	}
	return r
}

// put parks d in its position's slot, blocking while the position is
// ahead of the consumer's current lap (which also covers a slot still
// holding an unconsumed result from a lap ago: consuming that result is
// exactly what advances the lap, and it signals this slot). It returns
// false once the ring is aborted; the caller abandons the result.
func (r *reorderRing) put(d decodedSecret) bool {
	cap := uint64(len(r.slots))
	s := &r.slots[d.pos%cap]
	s.mu.Lock()
	for (s.full || d.pos >= r.base.Load()+cap) && !r.aborted.Load() {
		s.cond.Wait()
	}
	if r.aborted.Load() {
		s.mu.Unlock()
		return false
	}
	s.val = d
	s.full = true
	s.cond.Broadcast()
	s.mu.Unlock()
	return true
}

// take removes and returns the result for position pos — the consumer
// must call it with strictly ascending positions from 0 — blocking
// until a producer delivers it. It returns ok=false once the ring is
// aborted with the slot still empty.
func (r *reorderRing) take(pos uint64) (decodedSecret, bool) {
	s := &r.slots[pos%uint64(len(r.slots))]
	s.mu.Lock()
	for !s.full && !r.aborted.Load() {
		s.cond.Wait()
	}
	if !s.full {
		s.mu.Unlock()
		return decodedSecret{}, false
	}
	d := s.val
	s.val = decodedSecret{}
	s.full = false
	// Advancing base past pos makes pos+capacity eligible, and that
	// producer waits on this very slot's cond (same residue), so the
	// broadcast below is its wakeup.
	r.base.Store(pos + 1)
	s.cond.Broadcast()
	s.mu.Unlock()
	return d, true
}

// abort unblocks every producer and consumer; subsequent put/take on
// empty slots fail fast. Filled slots may still be taken (the writer
// never does — it unwinds on the pending error instead).
func (r *reorderRing) abort() {
	r.aborted.Store(true)
	for i := range r.slots {
		s := &r.slots[i]
		s.mu.Lock()
		s.cond.Broadcast()
		s.mu.Unlock()
	}
}
