package container

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"cdstore/internal/cache"
	"cdstore/internal/metadata"
	"cdstore/internal/storage"
)

// numStripes is the number of lock stripes the Store's open buffers are
// split across. Containers are single-user (§4.5), so striping by user
// lets concurrent sessions of different users append — and flush full
// containers to the backend — without blocking each other.
const numStripes = 16

// stripe guards the open write buffers of the users hashing to it.
type stripe struct {
	mu         sync.Mutex
	shareBufs  map[uint64]*Writer // keyed by user ID
	recipeBufs map[uint64]*Writer
}

// Store is the container module of one CDStore server: it maintains
// per-user in-memory buffers for shares and recipes (§4.5 optimization 1),
// flushes full containers to the storage backend, and serves reads through
// an LRU container cache (§4.5 optimization 2). All methods are safe for
// concurrent use; appends by different users proceed in parallel.
type Store struct {
	backend  storage.Backend
	capacity int
	nextSeq  atomic.Uint64
	stripes  [numStripes]stripe
	cached   *cache.LRU // name -> *Container
}

// StoreOptions configures a Store.
type StoreOptions struct {
	// Capacity caps container size in bytes (default 4MB).
	Capacity int
	// CacheBytes bounds the read cache (default 64MB).
	CacheBytes int64
}

// NewStore opens a container store over a backend, recovering the naming
// sequence from existing containers.
func NewStore(backend storage.Backend, opts *StoreOptions) (*Store, error) {
	capacity := DefaultCapacity
	cacheBytes := int64(64 << 20)
	if opts != nil {
		if opts.Capacity > 0 {
			capacity = opts.Capacity
		}
		if opts.CacheBytes > 0 {
			cacheBytes = opts.CacheBytes
		}
	}
	s := &Store{
		backend:  backend,
		capacity: capacity,
		cached:   cache.NewLRU(cacheBytes),
	}
	for i := range s.stripes {
		s.stripes[i].shareBufs = make(map[uint64]*Writer)
		s.stripes[i].recipeBufs = make(map[uint64]*Writer)
	}
	names, err := backend.List()
	if err != nil {
		return nil, err
	}
	for _, n := range names {
		var seq uint64
		if parseContainerName(n, nil, &seq) && seq >= s.nextSeq.Load() {
			s.nextSeq.Store(seq + 1)
		}
	}
	return s, nil
}

func (s *Store) stripeFor(userID uint64) *stripe {
	return &s.stripes[userID%numStripes]
}

func containerName(typ Type, userID, seq uint64) string {
	return fmt.Sprintf("%s-u%d-%012d", typ, userID, seq)
}

// parseContainerName extracts the owning user (optional) and sequence
// number from a container name of the form "<type>-u<user>-<seq>".
func parseContainerName(name string, userID, seq *uint64) bool {
	i := strings.LastIndex(name, "-")
	if i < 0 {
		return false
	}
	if seq != nil {
		if _, err := fmt.Sscanf(name[i+1:], "%d", seq); err != nil {
			return false
		}
	}
	if userID == nil {
		return true
	}
	j := strings.LastIndex(name[:i], "-u")
	if j < 0 {
		return false
	}
	_, err := fmt.Sscanf(name[j+2:i], "%d", userID)
	return err == nil
}

// Entry re-exported note: AddShares takes container.Entry values (key +
// data) so the server can append a whole classified batch under one
// stripe lock.

// AddShare buffers a unique share for user and returns the name of the
// container that will hold it. Full containers flush to the backend
// automatically.
func (s *Store) AddShare(userID uint64, fp metadata.Fingerprint, data []byte) (string, error) {
	names, err := s.AddShares(userID, []Entry{{Key: fp, Data: data}})
	if err != nil {
		return "", err
	}
	return names[0], nil
}

// AddShares buffers a batch of unique shares for user, taking the user's
// stripe lock once, and returns the name of the container holding each
// share. This is the server's batched write path: index shard locks are
// never held here, so sessions block on container I/O, not on each
// other's index critical sections.
func (s *Store) AddShares(userID uint64, entries []Entry) ([]string, error) {
	st := s.stripeFor(userID)
	st.mu.Lock()
	defer st.mu.Unlock()
	names := make([]string, len(entries))
	for i := range entries {
		name, err := s.addLocked(st.shareBufs, ShareContainer, userID, entries[i].Key, entries[i].Data)
		if err != nil {
			return nil, err
		}
		names[i] = name
	}
	return names, nil
}

// AddRecipe buffers a file recipe keyed by its file key.
func (s *Store) AddRecipe(userID uint64, fileKey metadata.Fingerprint, recipe []byte) (string, error) {
	st := s.stripeFor(userID)
	st.mu.Lock()
	defer st.mu.Unlock()
	return s.addLocked(st.recipeBufs, RecipeContainer, userID, fileKey, recipe)
}

// addLocked appends one entry to the user's open writer, rotating and
// flushing as needed. Caller holds the user's stripe lock.
func (s *Store) addLocked(bufs map[uint64]*Writer, typ Type, userID uint64, key metadata.Fingerprint, data []byte) (string, error) {
	w := bufs[userID]
	if w == nil || !w.Fits(len(data)) {
		if w != nil {
			if err := s.persist(w); err != nil {
				return "", err
			}
		}
		w = NewWriter(containerName(typ, userID, s.nextSeq.Add(1)-1), typ, userID, s.capacity)
		bufs[userID] = w
	}
	name := w.Name()
	if err := w.Add(key, data); err != nil {
		return "", err
	}
	if w.Full() {
		if err := s.persist(w); err != nil {
			return "", err
		}
		delete(bufs, userID)
	}
	return name, nil
}

// persist seals and writes a writer to the backend. Caller holds the
// stripe lock owning w (so w is no longer mutated); the backend and the
// read cache are themselves concurrency-safe.
func (s *Store) persist(w *Writer) error {
	if w.Len() == 0 {
		return nil
	}
	c := w.Seal()
	data := c.Marshal()
	if err := s.backend.Put(c.Name, data); err != nil {
		return err
	}
	s.cached.AddCharged(c.Name, c, int64(len(data)))
	return nil
}

// Flush persists every open buffer (called before serving restores and on
// shutdown).
func (s *Store) Flush() error {
	for i := range s.stripes {
		st := &s.stripes[i]
		st.mu.Lock()
		for u, w := range st.shareBufs {
			if err := s.persist(w); err != nil {
				st.mu.Unlock()
				return err
			}
			delete(st.shareBufs, u)
		}
		for u, w := range st.recipeBufs {
			if err := s.persist(w); err != nil {
				st.mu.Unlock()
				return err
			}
			delete(st.recipeBufs, u)
		}
		st.mu.Unlock()
	}
	return nil
}

// get fetches a container: open buffers first (located via the owning
// user parsed from the name), then the cache, then the backend.
func (s *Store) get(name string) (*Container, error) {
	var userID uint64
	if parseContainerName(name, &userID, nil) {
		st := s.stripeFor(userID)
		st.mu.Lock()
		for _, bufs := range []map[uint64]*Writer{st.shareBufs, st.recipeBufs} {
			if w := bufs[userID]; w != nil && w.Name() == name {
				c := w.Seal()
				st.mu.Unlock()
				return c, nil
			}
		}
		st.mu.Unlock()
	}
	if v, ok := s.cached.Get(name); ok {
		return v.(*Container), nil
	}
	raw, err := s.backend.Get(name)
	if err != nil {
		return nil, err
	}
	c, err := Unmarshal(name, raw)
	if err != nil {
		return nil, err
	}
	s.cached.AddCharged(name, c, int64(len(raw)))
	return c, nil
}

// GetEntry returns the data stored for key inside the named container.
func (s *Store) GetEntry(name string, key metadata.Fingerprint) ([]byte, error) {
	c, err := s.get(name)
	if err != nil {
		return nil, err
	}
	data := c.Find(key)
	if data == nil {
		return nil, fmt.Errorf("container: %s has no entry %s", name, key)
	}
	return data, nil
}

// GetContainer returns a parsed container by name (used by repair).
func (s *Store) GetContainer(name string) (*Container, error) { return s.get(name) }

// Delete removes a container from backend and cache (garbage collection).
func (s *Store) Delete(name string) error {
	s.cached.Remove(name)
	return s.backend.Delete(name)
}

// CacheStats exposes the read cache hit/miss counters.
func (s *Store) CacheStats() (hits, misses uint64) { return s.cached.Stats() }

// DropCache empties the read cache (cold-read experiments, tests).
func (s *Store) DropCache() { s.cached.Purge() }
