package cost

// Measured-volume analysis: instead of the synthetic Params knobs of
// Analyze, this path is fed the transfer volumes a real scenario run
// recorded (internal/scenario) — logical bytes backed up, shares
// actually sent over the wire after two-stage dedup, shares stored, and
// the egress the restores and repairs pulled back down. The dedup ratio
// and the egress bill are then *measurements*, not assumptions, which is
// what keeps the §5.6 cost argument honest as the code changes.

import "math"

// EgressTier is one tier of S3 internet-outbound transfer pricing.
type EgressTier struct {
	// UpToGB is the cumulative upper bound of this tier in GB
	// (math.Inf(1) for the last tier).
	UpToGB float64
	// PricePerGB is the per-GB transfer-out price in this tier (USD).
	PricePerGB float64
}

// EgressTiers2014 is S3's internet data-transfer-out pricing of
// September 2014: the first GB each month is free, then $0.12/GB up to
// 10TB, stepping down for heavier use. Inbound transfer is free (§3.1),
// which is why Analyze ignores the upload direction entirely; the
// download direction — restores and repairs — is what this table prices.
var EgressTiers2014 = []EgressTier{
	{UpToGB: 1, PricePerGB: 0},
	{UpToGB: 10 * TB, PricePerGB: 0.120},
	{UpToGB: 50 * TB, PricePerGB: 0.090},
	{UpToGB: 150 * TB, PricePerGB: 0.070},
	{UpToGB: 500 * TB, PricePerGB: 0.050},
	{UpToGB: math.Inf(1), PricePerGB: 0.040},
}

// EgressMonthlyCost returns the cost of transferring gb gigabytes out of
// the cloud in one month under tiered pricing.
func EgressMonthlyCost(gb float64, tiers []EgressTier) float64 {
	cost := 0.0
	prev := 0.0
	remaining := gb
	for _, t := range tiers {
		if remaining <= 0 {
			break
		}
		span := t.UpToGB - prev
		take := math.Min(remaining, span)
		cost += take * t.PricePerGB
		remaining -= take
		prev = t.UpToGB
	}
	return cost
}

// Measured holds the transfer volumes recorded by one scenario run.
// All fields are bytes.
type Measured struct {
	// LogicalBytes is the pre-dedup user data backed up.
	LogicalBytes int64
	// LogicalShareBytes is the share volume before dedup
	// (logical × n/k dispersal blowup).
	LogicalShareBytes int64
	// TransferredShareBytes is the share volume actually uploaded after
	// client-side (intra-user) dedup.
	TransferredShareBytes int64
	// StoredShareBytes is the share volume retained on the clouds after
	// server-side (inter-user) dedup.
	StoredShareBytes int64
	// RestoredBytes is the logical data handed back to users by restores.
	RestoredBytes int64
	// RestoreEgressBytes is the distinct-download volume the restores
	// pulled from the clouds — under the healthy path this tracks
	// RestoredBytes (k shares reassemble one package), and it grows when
	// corruption forces brute-force k-subset retries to fetch extra
	// shares (§3.2).
	RestoreEgressBytes int64
	// RepairEgressBytes is the volume downloaded to rebuild shares on a
	// replacement cloud. Repair reads k shares per share rebuilt, so this
	// amplifies the degraded-read bill well beyond the clean-restore
	// floor.
	RepairEgressBytes int64
}

// DedupRatio is the end-to-end ratio of logical share volume to stored
// share volume (§5.4's metric, measured rather than assumed).
func (m Measured) DedupRatio() float64 {
	if m.StoredShareBytes == 0 {
		return 0
	}
	return float64(m.LogicalShareBytes) / float64(m.StoredShareBytes)
}

// MeasuredResult extends the §5.6 comparison with the egress side of the
// bill, derived from measured volumes.
type MeasuredResult struct {
	Result
	// DedupRatio is the measured ratio fed into the storage analysis.
	DedupRatio float64
	// RestoreEgressUSD and RepairEgressUSD price the month's scaled
	// download volumes.
	RestoreEgressUSD float64
	RepairEgressUSD  float64
	// DegradedPremiumUSD is the part of the egress bill above the clean
	// floor: what subset retries and repair amplification cost beyond
	// downloading each restored byte exactly once.
	DegradedPremiumUSD float64
	// TotalUSD is storage + VM + recipe + egress.
	TotalUSD float64
	// USDPerTBMonth normalizes TotalUSD by the retained logical volume.
	USDPerTBMonth float64
}

// AnalyzeMeasured runs the §5.6 analysis with the dedup ratio and egress
// volumes taken from a scenario run instead of synthetic knobs. The
// measured run is scaled so its logical backup volume represents
// weeklyTB terabytes per week; restoreFracPerMonth is the fraction of
// the retained data restored per month (the paper's cost study covers
// backup only, i.e. 0; disaster-recovery planning uses > 0), and the
// measured egress-to-restore overhead ratios are preserved under the
// scaling.
func AnalyzeMeasured(m Measured, weeklyTB, restoreFracPerMonth float64, params Params) (MeasuredResult, error) {
	var mr MeasuredResult
	ratio := m.DedupRatio()
	if ratio < 1 {
		// A run that stored more than it ingested still prices as ratio 1
		// (dedup can only help; overhead is carried by the recipe/index
		// terms, not the share store).
		ratio = 1
	}
	p := params
	p.WeeklyBackupGB = weeklyTB * TB
	p.DedupRatio = ratio
	r, err := Analyze(p)
	if err != nil {
		return mr, err
	}
	mr.Result = r
	mr.DedupRatio = ratio

	// Scale the measured egress volumes to the deployment: the run
	// restored some fraction of its logical data with a measured
	// overhead ratio (egress / restored); the deployment restores
	// restoreFracPerMonth of its retained volume each month with the
	// same overhead.
	restoredGBMonth := r.LogicalGB * restoreFracPerMonth
	restoreOverhead := 1.0
	if m.RestoredBytes > 0 {
		restoreOverhead = float64(m.RestoreEgressBytes) / float64(m.RestoredBytes)
	}
	repairOverhead := 0.0
	if m.RestoredBytes > 0 {
		repairOverhead = float64(m.RepairEgressBytes) / float64(m.RestoredBytes)
	}
	restoreEgressGB := restoredGBMonth * restoreOverhead
	repairEgressGB := restoredGBMonth * repairOverhead

	// Each cloud bills its own tier schedule; restores spread the
	// distinct downloads evenly across the k live clouds and repair
	// across the k sources, so per-cloud volume is total/n at best —
	// using n keeps the estimate conservative (cheaper tiers engage
	// later, not sooner).
	n := float64(p.N)
	if n == 0 {
		n = 4
	}
	mr.RestoreEgressUSD = n * EgressMonthlyCost(restoreEgressGB/n, EgressTiers2014)
	mr.RepairEgressUSD = n * EgressMonthlyCost(repairEgressGB/n, EgressTiers2014)

	// The clean floor: every restored byte downloaded exactly once,
	// no repair traffic.
	floorUSD := n * EgressMonthlyCost(restoredGBMonth/n, EgressTiers2014)
	mr.DegradedPremiumUSD = mr.RestoreEgressUSD + mr.RepairEgressUSD - floorUSD
	if mr.DegradedPremiumUSD < 0 {
		mr.DegradedPremiumUSD = 0
	}

	mr.TotalUSD = r.CDStoreTotalUSD + mr.RestoreEgressUSD + mr.RepairEgressUSD
	retainedTB := r.LogicalGB / TB
	if retainedTB > 0 {
		mr.USDPerTBMonth = mr.TotalUSD / retainedTB
	}
	return mr, nil
}
