// Backup scenario: an organization of several users takes weekly backups
// of evolving datasets to four clouds. Demonstrates both stages of
// deduplication (§3.3) with per-week savings, mirroring Figure 6's
// methodology on a live (not simulated) deployment.
package main

import (
	"fmt"
	"log"

	"cdstore"
	"cdstore/internal/workload"
)

func main() {
	const (
		users  = 3
		weeks  = 4
		chunks = 600 // chunks per user's dataset (~5MB at 8KB average)
	)
	cluster, err := cdstore.NewCluster(cdstore.ClusterConfig{N: 4, K: 3})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	// An FSL-like trace: each user's data evolves a few percent per
	// week, with a little cross-user overlap.
	trace := workload.GenerateFSL(workload.FSLConfig{
		Users: users, Weeks: weeks, ChunksPerUser: chunks, Seed: 7,
	})

	fmt.Printf("%-5s %-5s %-12s %-14s %-16s %-14s\n",
		"week", "user", "logical(KB)", "sent(KB)", "intra-saving", "stored-new(KB)")
	var prevStored uint64
	for w := 0; w < weeks; w++ {
		for u := 0; u < users; u++ {
			client, err := cluster.Connect(uint64(u+1), 2, nil)
			if err != nil {
				log.Fatal(err)
			}
			b := trace[w][u]
			path := fmt.Sprintf("/u%d/week%d.tar", u, w)
			// Trace-driven: each trace chunk is a secret (§5.5).
			stats, err := client.BackupStream(path, workload.NewChunkIter(b))
			if err != nil {
				log.Fatal(err)
			}
			client.Close()

			var stored uint64
			for _, c := range cluster.Clouds {
				stored += c.Server.Stats().BytesStored
			}
			fmt.Printf("%-5d %-5d %-12d %-14d %-15.1f%% %-14d\n",
				w+1, u+1, stats.LogicalBytes/1024, stats.TransferredShareBytes/1024,
				100*stats.IntraUserSaving(), (stored-prevStored)/1024)
			prevStored = stored
		}
	}

	// Final accounting across the whole deployment.
	var received, stored uint64
	for _, c := range cluster.Clouds {
		s := c.Server.Stats()
		received += s.BytesReceived
		stored += s.BytesStored
	}
	fmt.Printf("\ntotals: received %d KB after intra-user dedup, stored %d KB after inter-user dedup\n",
		received/1024, stored/1024)
	fmt.Printf("inter-user dedup saving: %.1f%%\n", 100*(1-float64(stored)/float64(received)))

	// Every user's latest backup restores correctly.
	for u := 0; u < users; u++ {
		client, err := cluster.Connect(uint64(u+1), 2, nil)
		if err != nil {
			log.Fatal(err)
		}
		path := fmt.Sprintf("/u%d/week%d.tar", u, weeks-1)
		var sink countWriter
		if _, err := client.Restore(path, &sink); err != nil {
			log.Fatalf("restore %s: %v", path, err)
		}
		client.Close()
		fmt.Printf("user %d restored %s: %d bytes\n", u+1, path, sink)
	}
}

type countWriter int64

func (c *countWriter) Write(p []byte) (int, error) {
	*c += countWriter(len(p))
	return len(p), nil
}
