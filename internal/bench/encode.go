package bench

import (
	"fmt"
	"math/rand"
	"time"

	"cdstore/internal/client"
	"cdstore/internal/cloud"
	"cdstore/internal/gf256"
	"cdstore/internal/reedsolomon"
	"cdstore/internal/workload"
)

// ----------------------------------------------------- wide-kernel speed

// KernelRow compares the wide GF(2^8) kernel against the forced-scalar
// baseline for one shard size: single-thread reedsolomon.Encode
// throughput in source-data MB/s (k data shards of ShardBytes each per
// encode call).
type KernelRow struct {
	ShardBytes int
	N, K       int
	ScalarMBps float64
	WideMBps   float64
	Speedup    float64
}

// kernelCodecs builds the wide-kernel codec and its forced-scalar twin.
// The wide field is pinned explicitly: reedsolomon.New would dispatch
// the SIMD kernel where available, and this pair must keep measuring
// wide-vs-scalar regardless (KernelSweep covers the per-kernel matrix).
func kernelCodecs(n, k int) (wide, scalar *reedsolomon.Codec, err error) {
	wide, err = reedsolomon.NewWithField(n, k, gf256.NewWide())
	if err != nil {
		return nil, nil, err
	}
	scalar, err = reedsolomon.NewWithField(n, k, gf256.NewScalar())
	if err != nil {
		return nil, nil, err
	}
	return wide, scalar, nil
}

// makeShards builds n equal shard buffers of size bytes, the first k
// filled with deterministic pseudo-random data.
func makeShards(n, k, size int, seed int64) [][]byte {
	rng := rand.New(rand.NewSource(seed))
	shards := make([][]byte, n)
	for i := range shards {
		shards[i] = make([]byte, size)
		if i < k {
			rng.Read(shards[i])
		}
	}
	return shards
}

// timeEncode runs codec.Encode on shards until at least minDuration has
// elapsed and returns throughput in source-data MB/s.
func timeEncode(codec *reedsolomon.Codec, shards [][]byte, minDuration time.Duration) (float64, error) {
	// Warm-up builds lazy tables outside the timed region.
	if err := codec.Encode(shards); err != nil {
		return 0, err
	}
	iters := 0
	start := time.Now()
	var elapsed time.Duration
	for {
		if err := codec.Encode(shards); err != nil {
			return 0, err
		}
		iters++
		if elapsed = time.Since(start); elapsed >= minDuration {
			break
		}
	}
	dataBytes := float64(codec.K()*len(shards[0])) * float64(iters)
	return dataBytes / (1 << 20) / elapsed.Seconds(), nil
}

// KernelSpeed measures wide vs forced-scalar Encode throughput at (n, k)
// for every shard size. Wide and scalar run adjacently per size and the
// best of `rounds` interleaved rounds is kept, which makes the ratio
// robust against background load that shifts both equally.
func KernelSpeed(n, k int, shardSizes []int, rounds int) ([]KernelRow, error) {
	if len(shardSizes) == 0 {
		shardSizes = []int{1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10}
	}
	if rounds <= 0 {
		rounds = 3
	}
	wide, scalar, err := kernelCodecs(n, k)
	if err != nil {
		return nil, err
	}
	rows := make([]KernelRow, 0, len(shardSizes))
	for _, size := range shardSizes {
		shards := makeShards(n, k, size, int64(size))
		row := KernelRow{ShardBytes: size, N: n, K: k}
		for r := 0; r < rounds; r++ {
			w, err := timeEncode(wide, shards, 30*time.Millisecond)
			if err != nil {
				return nil, err
			}
			s, err := timeEncode(scalar, shards, 30*time.Millisecond)
			if err != nil {
				return nil, err
			}
			if w > row.WideMBps {
				row.WideMBps = w
			}
			if s > row.ScalarMBps {
				row.ScalarMBps = s
			}
		}
		row.Speedup = row.WideMBps / row.ScalarMBps
		rows = append(rows, row)
	}
	return rows, nil
}

// BestKernelRatio returns the best wide/scalar Encode ratio observed over
// `rounds` adjacent pairs at one shard size — the quantity the CI
// speedup assertion checks.
func BestKernelRatio(n, k, shardSize, rounds int) (float64, error) {
	wide, scalar, err := kernelCodecs(n, k)
	if err != nil {
		return 0, err
	}
	shards := makeShards(n, k, shardSize, int64(shardSize))
	best := 0.0
	for r := 0; r < rounds; r++ {
		w, err := timeEncode(wide, shards, 50*time.Millisecond)
		if err != nil {
			return 0, err
		}
		s, err := timeEncode(scalar, shards, 50*time.Millisecond)
		if err != nil {
			return 0, err
		}
		if ratio := w / s; ratio > best {
			best = ratio
		}
	}
	return best, nil
}

// ------------------------------------------------- cluster-level encode

// ClusterEncodeRow is one end-to-end measurement: a real client backing
// up through real CAONT-RS encoding to n real cloud servers over TCP —
// the speed a user feels, not a kernel microbenchmark (closing the
// ROADMAP PR 1 follow-up: the sessions bench drove raw protocol frames
// against one cloud; this drives client encoding against all n).
type ClusterEncodeRow struct {
	N, K       int
	Threads    int
	DataMB     int
	Elapsed    time.Duration
	MBps       float64
	Secrets    int64
	SharesSent int64
}

// ClusterEncode starts an n-cloud cluster (in-memory backends, unshaped
// loopback TCP links so encoding stays the bottleneck), connects one
// client with `threads` encode workers, and backs up dataMB of random
// data in fixed 8KB chunks (the §5.5 VM-dataset regime). Random data
// defeats dedup, so every share is encoded, fingerprinted, queried, and
// transferred.
func ClusterEncode(dataMB, threads, n, k int) (ClusterEncodeRow, error) {
	cl, err := cloud.NewCluster(cloud.Config{N: n, K: k, ContainerCapacity: 1 << 20})
	if err != nil {
		return ClusterEncodeRow{}, err
	}
	defer cl.Close()
	cli, err := client.Connect(client.Options{
		UserID:         1,
		N:              n,
		K:              k,
		EncodeThreads:  threads,
		FixedChunkSize: 8 << 10,
	}, cl.Dialers(nil))
	if err != nil {
		return ClusterEncodeRow{}, err
	}
	defer cli.Close()
	data := workload.UniqueData(77, dataMB<<20)
	start := time.Now()
	stats, err := cli.Backup("/bench-encode", newSliceReader(data))
	if err != nil {
		return ClusterEncodeRow{}, fmt.Errorf("cluster encode backup: %w", err)
	}
	elapsed := time.Since(start)
	return ClusterEncodeRow{
		N: n, K: k,
		Threads:    threads,
		DataMB:     dataMB,
		Elapsed:    elapsed,
		MBps:       float64(stats.LogicalBytes) / (1 << 20) / elapsed.Seconds(),
		Secrets:    stats.Secrets,
		SharesSent: stats.SharesSent,
	}, nil
}

// ClusterEncodeSweep runs ClusterEncode for each thread count.
func ClusterEncodeSweep(dataMB, n, k int, threads []int) ([]ClusterEncodeRow, error) {
	if len(threads) == 0 {
		threads = []int{1, 2, 4}
	}
	rows := make([]ClusterEncodeRow, 0, len(threads))
	for _, th := range threads {
		row, err := ClusterEncode(dataMB, th, n, k)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}
