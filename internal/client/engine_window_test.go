package client

import (
	"bytes"
	"math/rand"
	"testing"

	"cdstore/internal/metadata"
)

// windowTestEngine builds a bare restoreEngine over a synthetic recipe
// with the given per-secret sizes — enough state for windowEnd, which
// only consults the recipe, the counts, and the budgets.
func windowTestEngine(sizes []uint32, window, windowBytes int) *restoreEngine {
	r := &metadata.Recipe{
		FileMeta: metadata.FileMeta{NumSecrets: uint64(len(sizes))},
		Entries:  make([]metadata.RecipeEntry, len(sizes)),
	}
	for i, sz := range sizes {
		r.Entries[i].SecretSize = sz
	}
	return &restoreEngine{
		numSecrets:  uint64(len(sizes)),
		count:       uint64(len(sizes)),
		window:      window,
		windowBytes: windowBytes,
		primary:     []cloudRecipe{{recipe: r}},
	}
}

// TestWindowEndCountOnly: without a byte budget the windows are the
// previous fixed count partition.
func TestWindowEndCountOnly(t *testing.T) {
	sizes := make([]uint32, 10)
	for i := range sizes {
		sizes[i] = 1 << 20 // size must be irrelevant
	}
	e := windowTestEngine(sizes, 4, 0)
	for start, want := range map[uint64]uint64{0: 4, 4: 8, 8: 10} {
		if got := e.windowEnd(start); got != want {
			t.Fatalf("windowEnd(%d) = %d, want %d", start, got, want)
		}
	}
}

// TestWindowEndByteBudget walks skewed secret sizes through a byte
// budget: runs of small secrets fill up to the count cap, a run of big
// secrets closes windows early, and a secret larger than the whole
// budget still gets a window of its own.
func TestWindowEndByteBudget(t *testing.T) {
	sizes := []uint32{
		100, 100, 100, 100, 100, // small: count cap (5) closes the window
		4000, 4000, // two big ones fill the 8000 budget exactly
		9000,       // bigger than the budget: solo window, no stall
		4000, 100, // big+small under budget together
	}
	e := windowTestEngine(sizes, 5, 8000)
	var bounds []uint64
	for start := uint64(0); start < e.numSecrets; {
		end := e.windowEnd(start)
		if end <= start {
			t.Fatalf("windowEnd(%d) = %d: empty window would stall the pipeline", start, end)
		}
		bounds = append(bounds, end)
		start = end
	}
	want := []uint64{5, 7, 8, 10}
	if len(bounds) != len(want) {
		t.Fatalf("window bounds %v, want %v", bounds, want)
	}
	for i := range want {
		if bounds[i] != want[i] {
			t.Fatalf("window bounds %v, want %v", bounds, want)
		}
	}
}

// TestWindowEndBudgetIsExclusive: a secret that would push the window
// past the budget starts the next window; one that lands exactly on the
// budget stays in.
func TestWindowEndBudgetIsExclusive(t *testing.T) {
	e := windowTestEngine([]uint32{3000, 3000, 3000}, 16, 6000)
	if got := e.windowEnd(0); got != 2 {
		t.Fatalf("exact-fit budget: windowEnd(0) = %d, want 2", got)
	}
	e = windowTestEngine([]uint32{3000, 3001, 3000}, 16, 6000)
	if got := e.windowEnd(0); got != 1 {
		t.Fatalf("overflow by one byte: windowEnd(0) = %d, want 1", got)
	}
}

// TestRestoreWindowBytesSkewedSizes is the end-to-end check: a file of
// wildly skewed chunk sizes restored under a tight byte budget must come
// back bit-identical, with the budget forcing many short windows rather
// than one count-full window of huge chunks.
func TestRestoreWindowBytesSkewedSizes(t *testing.T) {
	dialers := pipeDialers(t, 4, 3)
	c, err := Connect(Options{
		UserID: 1, N: 4, K: 3, EncodeThreads: 2,
		RestoreWindow:      64,
		RestoreWindowBytes: 24 << 10, // a few mid-size chunks per window
	}, dialers)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// Random data gives the content-defined chunker skewed chunk sizes.
	data := make([]byte, 600<<10)
	rand.New(rand.NewSource(21)).Read(data)
	if _, err := c.Backup("/skewed.bin", bytes.NewReader(data)); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	stats, err := c.Restore("/skewed.bin", &out)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), data) {
		t.Fatal("byte-budgeted restore corrupted the file")
	}
	if stats.Secrets < 16 {
		t.Fatalf("only %d secrets: workload too small to exercise windowing", stats.Secrets)
	}
}
