// Command cdstore-server runs one per-cloud CDStore server: it accepts
// CDStore client connections, performs inter-user deduplication, and
// stores share/recipe containers in a directory-backed storage backend
// (standing in for the cloud object store reachable over the free
// intra-cloud link, §3.1).
//
// A four-cloud deployment runs four of these, one per cloud index:
//
//	cdstore-server -cloud 0 -listen :9000 -dir /var/cdstore/cloud0 &
//	cdstore-server -cloud 1 -listen :9001 -dir /var/cdstore/cloud1 &
//	cdstore-server -cloud 2 -listen :9002 -dir /var/cdstore/cloud2 &
//	cdstore-server -cloud 3 -listen :9003 -dir /var/cdstore/cloud3 &
package main

import (
	"flag"
	"log"
	"net"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"

	"cdstore/internal/server"
	"cdstore/internal/storage"
)

func main() {
	var (
		listen      = flag.String("listen", ":9000", "address to listen on")
		cloud       = flag.Int("cloud", 0, "cloud index (0..n-1)")
		n           = flag.Int("n", 4, "total number of clouds")
		k           = flag.Int("k", 3, "reconstruction threshold")
		dir         = flag.String("dir", "cdstore-data", "data directory (index + containers)")
		scrubEvery  = flag.Duration("scrub-interval", 0, "background integrity-scrub pass cadence (0 disables the loop; explicit passes via the protocol still work)")
		scrubBudget = flag.Int64("scrub-budget", 0, "scrub scan I/O budget in bytes/sec (0 = unthrottled)")
	)
	flag.Parse()

	backend, err := storage.NewLocalDir(filepath.Join(*dir, "containers"))
	if err != nil {
		log.Fatalf("opening backend: %v", err)
	}
	srv, err := server.New(server.Config{
		CloudIndex:             *cloud,
		N:                      *n,
		K:                      *k,
		IndexDir:               filepath.Join(*dir, "index"),
		Backend:                backend,
		ScrubInterval:          *scrubEvery,
		ScrubBudgetBytesPerSec: *scrubBudget,
	})
	if err != nil {
		log.Fatalf("starting server: %v", err)
	}
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatalf("listening on %s: %v", *listen, err)
	}
	log.Printf("cdstore-server cloud=%d (n=%d,k=%d) listening on %s, data in %s",
		*cloud, *n, *k, ln.Addr(), *dir)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		log.Printf("shutting down")
		srv.Close()
		os.Exit(0)
	}()
	if err := srv.Serve(ln); err != nil {
		log.Fatalf("serve: %v", err)
	}
}
