package storage

import (
	"errors"
	"fmt"
	"sync"
	"testing"
)

// backendContract exercises the Backend interface invariants.
func backendContract(t *testing.T, b Backend) {
	t.Helper()
	// Absent object.
	if _, err := b.Get("missing"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get(missing) = %v, want ErrNotFound", err)
	}
	// Put/Get round trip.
	if err := b.Put("obj1", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	got, err := b.Get("obj1")
	if err != nil || string(got) != "hello" {
		t.Fatalf("Get = %q, %v", got, err)
	}
	// Overwrite.
	if err := b.Put("obj1", []byte("world")); err != nil {
		t.Fatal(err)
	}
	got, _ = b.Get("obj1")
	if string(got) != "world" {
		t.Fatalf("overwrite failed: %q", got)
	}
	// List is sorted and complete.
	b.Put("obj0", []byte("x"))
	b.Put("obj2", []byte("y"))
	names, err := b.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 3 || names[0] != "obj0" || names[1] != "obj1" || names[2] != "obj2" {
		t.Fatalf("List = %v", names)
	}
	// Delete, including absent.
	if err := b.Delete("obj1"); err != nil {
		t.Fatal(err)
	}
	if err := b.Delete("obj1"); err != nil {
		t.Fatalf("double delete: %v", err)
	}
	if _, err := b.Get("obj1"); !errors.Is(err, ErrNotFound) {
		t.Fatal("deleted object still present")
	}
	// Mutating the returned slice must not affect the store.
	b.Put("immut", []byte("abc"))
	got, _ = b.Get("immut")
	got[0] = 'X'
	again, _ := b.Get("immut")
	if string(again) != "abc" {
		t.Fatal("backend exposed internal buffer")
	}
}

func TestMemoryContract(t *testing.T) { backendContract(t, NewMemory()) }

func TestLocalDirContract(t *testing.T) {
	b, err := NewLocalDir(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	backendContract(t, b)
}

func TestLocalDirEscaping(t *testing.T) {
	b, err := NewLocalDir(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	// Hostile names must not escape the directory.
	for _, name := range []string{"../../etc/passwd", "a/b/c", "..\\..\\x"} {
		if err := b.Put(name, []byte("data")); err != nil {
			t.Fatalf("Put(%q): %v", name, err)
		}
		got, err := b.Get(name)
		if err != nil || string(got) != "data" {
			t.Fatalf("Get(%q) = %q, %v", name, got, err)
		}
	}
}

func TestMemoryTotalBytes(t *testing.T) {
	m := NewMemory()
	m.Put("a", make([]byte, 100))
	m.Put("b", make([]byte, 50))
	if m.TotalBytes() != 150 {
		t.Fatalf("TotalBytes = %d, want 150", m.TotalBytes())
	}
}

func TestFaultyBackend(t *testing.T) {
	f := NewFaulty(NewMemory())
	if err := f.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	f.Fail()
	if !f.Down() {
		t.Fatal("Down() = false after Fail")
	}
	if err := f.Put("k2", []byte("v")); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("Put during outage: %v", err)
	}
	if _, err := f.Get("k"); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("Get during outage: %v", err)
	}
	if err := f.Delete("k"); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("Delete during outage: %v", err)
	}
	if _, err := f.List(); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("List during outage: %v", err)
	}
	f.Recover()
	got, err := f.Get("k")
	if err != nil || string(got) != "v" {
		t.Fatalf("after recovery: %q, %v", got, err)
	}
}

func TestMemoryConcurrent(t *testing.T) {
	m := NewMemory()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				name := fmt.Sprintf("obj-%d", (g+i)%50)
				m.Put(name, []byte{byte(i)})
				m.Get(name)
				if i%17 == 0 {
					m.Delete(name)
				}
				m.List()
			}
		}(g)
	}
	wg.Wait()
}
