package gf256

import (
	"bytes"
	"testing"
)

// FuzzKernels cross-checks every kernel implementation available in
// this process (wide, and whichever of ssse3/avx2/neon the CPU and
// build support) against the scalar oracle, on fuzzer-chosen
// coefficients, lengths, and unaligned slice offsets. The fuzzer owns
// the input space exploration; the seeds below just pin the structural
// corners (empty, sub-group, exact SIMD group sizes, odd tails, c=0/1
// special cases).
func FuzzKernels(f *testing.F) {
	f.Add(byte(0), byte(0), []byte{})
	f.Add(byte(1), byte(1), []byte("a"))
	f.Add(byte(2), byte(3), bytes.Repeat([]byte{0xff}, 15))
	f.Add(byte(29), byte(0), bytes.Repeat([]byte{0x1d}, 16))
	f.Add(byte(128), byte(5), bytes.Repeat([]byte{0xa5}, 33))
	f.Add(byte(255), byte(7), bytes.Repeat([]byte{0x80}, 64))
	f.Add(byte(173), byte(13), bytes.Repeat([]byte{0x5a}, 4099))

	scalar := NewScalar()
	fields := make(map[string]*Field)
	for _, name := range Kernels() {
		if name == "scalar" {
			continue
		}
		ff, err := NewWithKernel(name)
		if err != nil {
			f.Fatal(err)
		}
		fields[name] = ff
	}

	f.Fuzz(func(t *testing.T, c byte, off byte, data []byte) {
		// Derive an unaligned view: skip off%16 leading bytes so kernel
		// entry alignment varies independently of content.
		skip := int(off) % 16
		if skip > len(data) {
			skip = len(data)
		}
		src := data[skip:]
		dstInit := make([]byte, len(src))
		for i := range dstInit {
			dstInit[i] = byte(i*7 + 3)
		}

		wantAdd := append([]byte(nil), dstInit...)
		scalar.MulAddSlice(c, src, wantAdd)
		wantMul := make([]byte, len(src))
		scalar.MulSlice(c, src, wantMul)

		for name, ff := range fields {
			gotAdd := append([]byte(nil), dstInit...)
			ff.MulAddSlice(c, src, gotAdd)
			if !bytes.Equal(gotAdd, wantAdd) {
				t.Fatalf("%s MulAddSlice(c=%d, len=%d, skip=%d) diverges from scalar", name, c, len(src), skip)
			}
			gotMul := append([]byte(nil), dstInit...)
			ff.MulSlice(c, src, gotMul)
			if !bytes.Equal(gotMul, wantMul) {
				t.Fatalf("%s MulSlice(c=%d, len=%d, skip=%d) diverges from scalar", name, c, len(src), skip)
			}
		}

		// AddSlice runs the dispatched xor kernel; reference is plain XOR.
		wantXor := append([]byte(nil), dstInit...)
		for i := range wantXor {
			wantXor[i] ^= src[i]
		}
		gotXor := append([]byte(nil), dstInit...)
		AddSlice(src, gotXor)
		if !bytes.Equal(gotXor, wantXor) {
			t.Fatalf("AddSlice(len=%d, skip=%d) diverges from XOR reference", len(src), skip)
		}
	})
}
