package protocol

import (
	"encoding/binary"

	"cdstore/internal/metadata"
)

// Scrub/repair operator messages. MsgScrubStatus asks a server for its
// scrubber's state plus the damage inventory the repair scheduler needs;
// MsgGetShareContainers maps share fingerprints to the containers
// holding them (container-granularity blacklisting during restore);
// MsgScrubControl drives pause/resume/on-demand passes remotely.
const (
	MsgScrubStatus        = byte(17) // client -> server: {}
	MsgScrubReport        = byte(18) // server -> client: scrub counters + affected files
	MsgGetShareContainers = byte(19) // client -> server: {count:4, fp*count}
	MsgShareContainers    = byte(20) // server -> client: {count:4, [nameLen:4 name]*}
	MsgScrubControl       = byte(21) // client -> server: {op:1}; ack MsgPutOK
)

// MsgScrubControl operations.
const (
	ScrubOpRunPass = byte(1) // trigger an asynchronous pass
	ScrubOpPause   = byte(2)
	ScrubOpResume  = byte(3)
)

// AffectedFile names one file whose stripes reference damaged shares on
// the reporting cloud (or whose recipe bytes are gone there).
type AffectedFile struct {
	UserID uint64
	Path   string
	// RecipeLost: the cloud can no longer produce the file's recipe; the
	// scheduler must run a full repair (re-uploading the recipe), not a
	// targeted share re-dispersal.
	RecipeLost bool
	// Damaged lists the file's share fingerprints flagged damaged on
	// this cloud (empty when only the recipe is lost).
	Damaged []metadata.Fingerprint
}

// ScrubReport is a server's MsgScrubReport payload: scrubber lifetime
// counters, the outstanding damage inventory, and the load signal the
// scheduler's idle gating uses.
type ScrubReport struct {
	Paused            bool
	Passes            uint64
	ContainersScanned uint64
	BytesScanned      uint64
	EntriesVerified   uint64
	DamagedContainers uint64
	DamagedEntries    uint64
	QuarantinedShares uint64
	LostRecipes       uint64
	// RepairedShares counts damaged index entries healed by repair
	// uploads (the acceptance observable for "re-dispersed to full
	// health with zero client calls").
	RepairedShares uint64
	// DamagedOutstanding is the number of share entries currently
	// flagged damaged (0 = cloud fully healed).
	DamagedOutstanding uint64
	// InflightBytes is the server's current flow-limiter admission debt;
	// the scheduler defers repair while it is above its idle threshold.
	InflightBytes uint64
	Affected      []AffectedFile
}

const scrubReportCounters = 11 // uint64 counters after the flags byte

// EncodeScrubReport builds a MsgScrubReport payload.
func EncodeScrubReport(r *ScrubReport) []byte {
	size := 1 + scrubReportCounters*8 + 4
	for i := range r.Affected {
		size += 8 + 4 + len(r.Affected[i].Path) + 1 + 4 + len(r.Affected[i].Damaged)*metadata.FingerprintSize
	}
	out := make([]byte, 0, size)
	var flags byte
	if r.Paused {
		flags |= 1
	}
	out = append(out, flags)
	for _, v := range []uint64{
		r.Passes, r.ContainersScanned, r.BytesScanned, r.EntriesVerified,
		r.DamagedContainers, r.DamagedEntries, r.QuarantinedShares,
		r.LostRecipes, r.RepairedShares, r.DamagedOutstanding, r.InflightBytes,
	} {
		out = binary.BigEndian.AppendUint64(out, v)
	}
	out = binary.BigEndian.AppendUint32(out, uint32(len(r.Affected)))
	for i := range r.Affected {
		a := &r.Affected[i]
		out = binary.BigEndian.AppendUint64(out, a.UserID)
		out = binary.BigEndian.AppendUint32(out, uint32(len(a.Path)))
		out = append(out, a.Path...)
		if a.RecipeLost {
			out = append(out, 1)
		} else {
			out = append(out, 0)
		}
		out = binary.BigEndian.AppendUint32(out, uint32(len(a.Damaged)))
		for j := range a.Damaged {
			out = append(out, a.Damaged[j][:]...)
		}
	}
	return out
}

// DecodeScrubReport parses a MsgScrubReport payload.
func DecodeScrubReport(p []byte) (*ScrubReport, error) {
	if len(p) < 1+scrubReportCounters*8+4 {
		return nil, ErrMalformed
	}
	r := &ScrubReport{Paused: p[0]&1 != 0}
	p = p[1:]
	counters := []*uint64{
		&r.Passes, &r.ContainersScanned, &r.BytesScanned, &r.EntriesVerified,
		&r.DamagedContainers, &r.DamagedEntries, &r.QuarantinedShares,
		&r.LostRecipes, &r.RepairedShares, &r.DamagedOutstanding, &r.InflightBytes,
	}
	for _, c := range counters {
		*c = binary.BigEndian.Uint64(p)
		p = p[8:]
	}
	count := int(binary.BigEndian.Uint32(p))
	p = p[4:]
	if count < 0 || count > 1<<22 {
		return nil, ErrMalformed
	}
	r.Affected = make([]AffectedFile, 0, count)
	for i := 0; i < count; i++ {
		if len(p) < 12 {
			return nil, ErrMalformed
		}
		var a AffectedFile
		a.UserID = binary.BigEndian.Uint64(p)
		plen := int(binary.BigEndian.Uint32(p[8:]))
		p = p[12:]
		if plen < 0 || len(p) < plen+5 {
			return nil, ErrMalformed
		}
		a.Path = string(p[:plen])
		a.RecipeLost = p[plen] != 0
		fpCount := int(binary.BigEndian.Uint32(p[plen+1:]))
		p = p[plen+5:]
		if fpCount < 0 || len(p) < fpCount*metadata.FingerprintSize {
			return nil, ErrMalformed
		}
		a.Damaged = make([]metadata.Fingerprint, fpCount)
		for j := 0; j < fpCount; j++ {
			copy(a.Damaged[j][:], p)
			p = p[metadata.FingerprintSize:]
		}
		r.Affected = append(r.Affected, a)
	}
	if len(p) != 0 {
		return nil, ErrMalformed
	}
	return r, nil
}

// EncodeContainerNames builds a MsgShareContainers payload: one name per
// queried fingerprint, in query order; an empty name means the share is
// unknown (or its bytes are quarantined) on this cloud.
func EncodeContainerNames(names []string) []byte {
	size := 4
	for _, n := range names {
		size += 4 + len(n)
	}
	out := make([]byte, 0, size)
	out = binary.BigEndian.AppendUint32(out, uint32(len(names)))
	for _, n := range names {
		out = binary.BigEndian.AppendUint32(out, uint32(len(n)))
		out = append(out, n...)
	}
	return out
}

// DecodeContainerNames parses a MsgShareContainers payload.
func DecodeContainerNames(p []byte) ([]string, error) {
	if len(p) < 4 {
		return nil, ErrMalformed
	}
	count := int(binary.BigEndian.Uint32(p))
	p = p[4:]
	if count < 0 || count > 1<<22 {
		return nil, ErrMalformed
	}
	out := make([]string, 0, count)
	for i := 0; i < count; i++ {
		if len(p) < 4 {
			return nil, ErrMalformed
		}
		n := int(binary.BigEndian.Uint32(p))
		p = p[4:]
		if n < 0 || len(p) < n {
			return nil, ErrMalformed
		}
		out = append(out, string(p[:n]))
		p = p[n:]
	}
	if len(p) != 0 {
		return nil, ErrMalformed
	}
	return out, nil
}

// EncodeScrubControl builds a MsgScrubControl payload.
func EncodeScrubControl(op byte) []byte { return []byte{op} }

// DecodeScrubControl parses a MsgScrubControl payload.
func DecodeScrubControl(p []byte) (byte, error) {
	if len(p) != 1 {
		return 0, ErrMalformed
	}
	return p[0], nil
}
