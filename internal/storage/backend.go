// Package storage defines the object-storage backend abstraction each
// CDStore server writes containers to (the per-cloud "storage backend" of
// Figure 1), with a local-filesystem implementation, an in-memory
// implementation for tests, and a fault-injecting wrapper for failure
// experiments.
package storage

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// ErrNotFound is returned when an object does not exist.
var ErrNotFound = errors.New("storage: object not found")

// ErrUnavailable is returned by a backend that has been failed (cloud
// outage injection).
var ErrUnavailable = errors.New("storage: backend unavailable")

// Backend is a flat object store: named blobs with whole-object put/get.
// Implementations must be safe for concurrent use.
type Backend interface {
	// Put stores data under name, overwriting any existing object.
	Put(name string, data []byte) error
	// Get retrieves the object, or ErrNotFound.
	Get(name string) ([]byte, error)
	// Delete removes the object. Deleting an absent object is not an error.
	Delete(name string) error
	// List returns all object names in lexicographic order.
	List() ([]string, error)
}

// Memory is an in-memory Backend.
type Memory struct {
	mu      sync.RWMutex
	objects map[string][]byte
}

// NewMemory returns an empty in-memory backend.
func NewMemory() *Memory { return &Memory{objects: make(map[string][]byte)} }

// Put implements Backend.
func (m *Memory) Put(name string, data []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.objects[name] = append([]byte(nil), data...)
	return nil
}

// Get implements Backend.
func (m *Memory) Get(name string) ([]byte, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	data, ok := m.objects[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	return append([]byte(nil), data...), nil
}

// Delete implements Backend.
func (m *Memory) Delete(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.objects, name)
	return nil
}

// List implements Backend.
func (m *Memory) List() ([]string, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	names := make([]string, 0, len(m.objects))
	for n := range m.objects {
		names = append(names, n)
	}
	sort.Strings(names)
	return names, nil
}

// TotalBytes returns the sum of stored object sizes (test/metric helper).
func (m *Memory) TotalBytes() int64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	var t int64
	for _, d := range m.objects {
		t += int64(len(d))
	}
	return t
}

// LocalDir is a Backend storing each object as a file in a directory.
// Object names are escaped so arbitrary names stay within the directory.
type LocalDir struct {
	dir string
}

// NewLocalDir creates (if needed) and opens a directory-backed store.
func NewLocalDir(dir string) (*LocalDir, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &LocalDir{dir: dir}, nil
}

// escape maps an object name to a safe file name.
func escape(name string) string {
	r := strings.NewReplacer("/", "_S_", "\\", "_B_", "..", "_D_")
	return r.Replace(name)
}

func (l *LocalDir) path(name string) string { return filepath.Join(l.dir, escape(name)) }

// Put implements Backend with an atomic rename.
func (l *LocalDir) Put(name string, data []byte) error {
	tmp := l.path(name) + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, l.path(name))
}

// Get implements Backend.
func (l *LocalDir) Get(name string) ([]byte, error) {
	data, err := os.ReadFile(l.path(name))
	if os.IsNotExist(err) {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	return data, err
}

// Delete implements Backend.
func (l *LocalDir) Delete(name string) error {
	err := os.Remove(l.path(name))
	if os.IsNotExist(err) {
		return nil
	}
	return err
}

// List implements Backend. Escaped names are returned as stored; callers
// that need original names should use reversible name schemes (CDStore's
// container names contain no separators).
func (l *LocalDir) List() ([]string, error) {
	ents, err := os.ReadDir(l.dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		if e.IsDir() || strings.HasSuffix(e.Name(), ".tmp") {
			continue
		}
		names = append(names, e.Name())
	}
	sort.Strings(names)
	return names, nil
}

// Faulty wraps a Backend with switchable unavailability — the cloud
// outage model of the fault-tolerance experiments.
type Faulty struct {
	Backend
	down atomic.Bool
}

// NewFaulty wraps b.
func NewFaulty(b Backend) *Faulty { return &Faulty{Backend: b} }

// Fail makes every subsequent operation return ErrUnavailable.
func (f *Faulty) Fail() { f.down.Store(true) }

// Recover restores service.
func (f *Faulty) Recover() { f.down.Store(false) }

// Down reports whether the backend is failed.
func (f *Faulty) Down() bool { return f.down.Load() }

// Put implements Backend.
func (f *Faulty) Put(name string, data []byte) error {
	if f.down.Load() {
		return ErrUnavailable
	}
	return f.Backend.Put(name, data)
}

// Get implements Backend.
func (f *Faulty) Get(name string) ([]byte, error) {
	if f.down.Load() {
		return nil, ErrUnavailable
	}
	return f.Backend.Get(name)
}

// Delete implements Backend.
func (f *Faulty) Delete(name string) error {
	if f.down.Load() {
		return ErrUnavailable
	}
	return f.Backend.Delete(name)
}

// List implements Backend.
func (f *Faulty) List() ([]string, error) {
	if f.down.Load() {
		return nil, ErrUnavailable
	}
	return f.Backend.List()
}
