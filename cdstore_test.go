package cdstore

import (
	"bytes"
	"math/rand"
	"testing"
)

// TestFacadeEndToEnd exercises the public API exactly as the README's
// quick start does.
func TestFacadeEndToEnd(t *testing.T) {
	cluster, err := NewCluster(ClusterConfig{N: 4, K: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	c, err := cluster.Connect(1, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	data := make([]byte, 256*1024)
	rand.New(rand.NewSource(1)).Read(data)
	if _, err := c.Backup("/facade.tar", bytes.NewReader(data)); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if _, err := c.Restore("/facade.tar", &out); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), data) {
		t.Fatal("facade round trip mismatch")
	}
}

func TestFacadeSchemes(t *testing.T) {
	secret := []byte("facade-level secret sharing test content .....")
	mk := []func() (Scheme, error){
		func() (Scheme, error) { return NewCAONTRS(4, 3) },
		func() (Scheme, error) { return NewCAONTRSRivest(4, 3) },
		func() (Scheme, error) { return NewSSSS(4, 3) },
		func() (Scheme, error) { return NewIDA(4, 3) },
		func() (Scheme, error) { return NewRSSS(4, 3, 1) },
		func() (Scheme, error) { return NewSSMS(4, 3) },
		func() (Scheme, error) { return NewAONTRS(4, 3) },
	}
	for _, f := range mk {
		s, err := f()
		if err != nil {
			t.Fatal(err)
		}
		shares, err := s.Split(secret)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		got, err := s.Combine(map[int][]byte{0: shares[0], 1: shares[1], 3: shares[3]}, len(secret))
		if err != nil || !bytes.Equal(got, secret) {
			t.Fatalf("%s: combine failed: %v", s.Name(), err)
		}
		if StorageBlowup(s, 8192) < 1.0 {
			t.Fatalf("%s: blowup below 1", s.Name())
		}
	}
}

func TestFacadeCost(t *testing.T) {
	r, err := AnalyzeCost(CostParams{WeeklyBackupGB: 16 * CostTB})
	if err != nil {
		t.Fatal(err)
	}
	if r.SavingVsAONTRS < 0.5 {
		t.Fatalf("16TB case saving %.2f unexpectedly low", r.SavingVsAONTRS)
	}
}

func TestFacadeProfiles(t *testing.T) {
	if len(CloudProfiles()) != 4 {
		t.Fatal("want 4 cloud profiles")
	}
	if LANProfile().UploadBps <= 0 {
		t.Fatal("LAN profile empty")
	}
	if LANClientNIC().UploadBps <= 0 {
		t.Fatal("client NIC empty")
	}
	if FingerprintOf([]byte("x")) == FingerprintOf([]byte("y")) {
		t.Fatal("fingerprint collision")
	}
}
