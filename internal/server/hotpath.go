package server

import (
	"sync"

	"cdstore/internal/metadata"
	"cdstore/internal/protocol"
)

// This file holds the two server-wide hot-path services behind the put/
// get overhaul: the shared fingerprint worker pool (§3.3 re-hashing is
// mandatory; doing it one share at a time in the session goroutine is
// not) and the byte-budget admission limiter that keeps hundreds to
// thousands of concurrent sessions from thrashing the container store.

// hashChunk is the number of shares one pool job hashes. Big enough to
// amortize the handoff (a SHA-256 of a 4KB share is ~µs scale), small
// enough that a 64-share batch still fans across several cores.
const hashChunk = 16

// hashPool is a bounded, server-wide pool of fingerprinting workers.
// One pool serves every session, sized to the machine, so one session's
// 4MB batch can use all cores while 1000 concurrent sessions cannot
// spawn 1000× the hardware's worth of hashing goroutines.
type hashPool struct {
	jobs chan func()
	stop chan struct{}
	wg   sync.WaitGroup
}

func newHashPool(workers int) *hashPool {
	p := &hashPool{
		jobs: make(chan func(), workers*2),
		stop: make(chan struct{}),
	}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer p.wg.Done()
			for {
				select {
				case job := <-p.jobs:
					job()
				case <-p.stop:
					return
				}
			}
		}()
	}
	return p
}

// do runs job on a pool worker, or INLINE on the caller when every
// worker is busy. The inline fallback is load-shedding and deadlock
// freedom in one: submission never blocks, so sessions can never wedge
// each other through a full job queue, and under saturation each session
// degrades to hashing its own batch — exactly the pre-pool behavior.
func (p *hashPool) do(job func()) {
	select {
	case p.jobs <- job:
	default:
		job()
	}
}

func (p *hashPool) close() {
	close(p.stop)
	p.wg.Wait()
}

// fingerprintBatch recomputes every share's fingerprint (never trust the
// client's hash, §3.3), fanning hashChunk-sized slices of the batch
// across the pool. Results land in fps[i] for batch[i]; fps must have
// the batch's length.
func (s *Server) fingerprintBatch(fps []metadata.Fingerprint, batch []protocol.ShareUpload) {
	if len(batch) <= hashChunk || s.hashers == nil {
		for i := range batch {
			fps[i] = metadata.FingerprintOf(batch[i].Data)
		}
		return
	}
	var wg sync.WaitGroup
	for start := 0; start < len(batch); start += hashChunk {
		end := start + hashChunk
		if end > len(batch) {
			end = len(batch)
		}
		start := start
		wg.Add(1)
		s.hashers.do(func() {
			defer wg.Done()
			for i := start; i < end; i++ {
				fps[i] = metadata.FingerprintOf(batch[i].Data)
			}
		})
	}
	wg.Wait()
}

// flowWaiter is one parked acquire in the limiter's FIFO queue.
type flowWaiter struct {
	n     int64
	ready chan struct{}
}

// flowLimiter is the server-wide admission semaphore on in-flight
// put/get payload bytes. Grants are strictly FIFO: a session parks at
// most one acquire at a time (its handler loop is synchronous), so the
// queue interleaves sessions in arrival order — a round-robin byte
// budget at batch granularity. A 4MB uploader cannot starve 4KB
// uploaders behind it, and total buffered payload is bounded regardless
// of session count, which is what keeps 256+ sessions from collapsing
// the container store under admitted-but-unstorable bytes.
type flowLimiter struct {
	mu      sync.Mutex
	cap     int64
	avail   int64
	waiters []*flowWaiter
}

func newFlowLimiter(capacity int64) *flowLimiter {
	return &flowLimiter{cap: capacity, avail: capacity}
}

// acquire blocks until n bytes of budget are granted. Requests larger
// than the whole budget are clamped so a single oversized batch cannot
// deadlock (it just gets the whole budget to itself).
func (f *flowLimiter) acquire(n int64) {
	if n > f.cap {
		n = f.cap
	}
	f.mu.Lock()
	if len(f.waiters) == 0 && f.avail >= n {
		f.avail -= n
		f.mu.Unlock()
		return
	}
	w := &flowWaiter{n: n, ready: make(chan struct{})}
	f.waiters = append(f.waiters, w)
	f.mu.Unlock()
	<-w.ready
}

// inflightBytes reports the payload bytes currently admitted (budget in
// use). The scrub report exposes it so the repair scheduler can gate
// re-dispersal on server idleness.
func (f *flowLimiter) inflightBytes() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.cap - f.avail
}

// release returns n bytes of budget and grants as many FIFO waiters as
// now fit. Only the queue head may be granted out of available budget —
// skipping ahead would let small requests starve a large one forever.
func (f *flowLimiter) release(n int64) {
	if n > f.cap {
		n = f.cap
	}
	f.mu.Lock()
	f.avail += n
	for len(f.waiters) > 0 && f.avail >= f.waiters[0].n {
		w := f.waiters[0]
		f.waiters = f.waiters[1:]
		f.avail -= w.n
		close(w.ready)
	}
	f.mu.Unlock()
}
